#include "pdms/sim/peer_node.h"

#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace sim {

PeerNode::PeerNode(std::string name, SimNetwork* network)
    : name_(std::move(name)), network_(network) {
  network_->Register(name_, [this](const std::string& src,
                                   const Message& message) {
    HandleMessage(src, message);
  });
}

void PeerNode::ServeRelation(const Relation& relation) {
  (void)local_.CreateRelation(relation.name(), relation.arity());
  for (const Tuple& t : relation.tuples()) local_.Insert(relation.name(), t);
}

void PeerNode::ScanLocal(const std::string& relation,
                         Message::ScanResult* out) const {
  out->relation = relation;
  const Relation* found = local_.Find(relation);
  if (found == nullptr) {
    out->status = Status::NotFound(name_ + " does not serve stored relation " +
                                   relation);
    return;
  }
  out->arity = found->arity();
  out->tuples = found->tuples();
}

void PeerNode::HandleMessage(const std::string& src, const Message& message) {
  if (crashed_) return;  // silent: the coordinator's timeout will fire
  switch (message.type) {
    case Message::Type::kScanRequest: {
      ++requests_served_;
      Message response;
      response.type = Message::Type::kScanResponse;
      response.request_id = message.request_id;
      response.relation = message.relation;
      Message::ScanResult result;
      ScanLocal(message.relation, &result);
      response.status = result.status;
      response.arity = result.arity;
      response.tuples = std::move(result.tuples);
      network_->Send(name_, src, std::move(response));
      return;
    }
    case Message::Type::kRelayScanRequest:
      HandleRelayRequest(src, message);
      return;
    case Message::Type::kScanResponse:
      // A response to one of this node's relay sub-scans.
      HandleSubResponse(message);
      return;
    case Message::Type::kRelayScanResponse:
      return;  // peers never relay through a relay
  }
}

void PeerNode::HandleRelayRequest(const std::string& src,
                                  const Message& message) {
  ++requests_served_;
  const uint64_t job_id = next_job_id_++;
  RelayJob& job = relay_jobs_[job_id];
  job.origin = src;
  job.request_id = message.request_id;
  job.results.resize(message.targets.size());
  const double sub_timeout_ms =
      message.sub_timeout_ms > 0 ? message.sub_timeout_ms : 10.0;
  for (size_t i = 0; i < message.targets.size(); ++i) {
    const Message::RelayTarget& target = message.targets[i];
    if (target.owner == name_) {
      ScanLocal(target.relation, &job.results[i]);
      continue;
    }
    ++job.pending;
    const uint64_t sub_id = next_sub_id_++;
    relay_waits_[sub_id] = {job_id, i};
    job.results[i].relation = target.relation;
    Message sub;
    sub.type = Message::Type::kScanRequest;
    sub.request_id = sub_id;
    sub.relation = target.relation;
    network_->Send(name_, target.owner, std::move(sub));
    // One shot, no retry ladder at the relay: a sub-scan that misses its
    // budget is reported kUnavailable and the coordinator decides whether
    // to fall back to a direct fetch (which has the full ladder).
    network_->loop()->Schedule(sub_timeout_ms, [this, sub_id] {
      auto it = relay_waits_.find(sub_id);
      if (it == relay_waits_.end()) return;  // answered in time
      auto [job, index] = it->second;
      relay_waits_.erase(it);
      RelayJob& j = relay_jobs_[job];
      j.results[index].status = Status::Unavailable(
          StrFormat("relay %s: sub-scan of %s timed out", name_.c_str(),
                    j.results[index].relation.c_str()));
      network_->AppendTrace(StrFormat("rsub  %s: scan(%s) timed out",
                                      name_.c_str(),
                                      j.results[index].relation.c_str()));
      if (--j.pending == 0) FinishRelayJob(job);
    });
  }
  if (job.pending == 0) FinishRelayJob(job_id);
}

void PeerNode::HandleSubResponse(const Message& message) {
  auto it = relay_waits_.find(message.request_id);
  if (it == relay_waits_.end()) return;  // late or duplicate: already settled
  auto [job_id, index] = it->second;
  relay_waits_.erase(it);
  RelayJob& job = relay_jobs_[job_id];
  Message::ScanResult& result = job.results[index];
  result.status = message.status;
  if (message.status.ok()) {
    result.arity = message.arity;
    result.tuples = message.tuples;
  }
  if (--job.pending == 0) FinishRelayJob(job_id);
}

void PeerNode::FinishRelayJob(uint64_t job_id) {
  auto it = relay_jobs_.find(job_id);
  if (it == relay_jobs_.end()) return;
  RelayJob& job = it->second;
  Message response;
  response.type = Message::Type::kRelayScanResponse;
  response.request_id = job.request_id;
  response.results = std::move(job.results);
  network_->Send(name_, job.origin, std::move(response));
  relay_jobs_.erase(it);
}

}  // namespace sim
}  // namespace pdms
