#ifndef PDMS_SIM_SIM_NETWORK_H_
#define PDMS_SIM_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "pdms/fault/degradation.h"
#include "pdms/obs/trace.h"
#include "pdms/sim/event_loop.h"
#include "pdms/sim/message.h"
#include "pdms/sim/network_model.h"
#include "pdms/util/rng.h"

namespace pdms {
namespace sim {

/// Fault behaviour of a network link. Delivery delay is
/// `min_delay_ms + U[0, delay_jitter_ms)`; with nonzero jitter two
/// messages sent back-to-back can arrive out of order, which is how the
/// simulator produces reordering without a dedicated knob.
struct LinkFaults {
  double drop_probability = 0;       // message lost, silently
  double duplicate_probability = 0;  // message delivered twice
  double min_delay_ms = 1.0;
  double delay_jitter_ms = 0;

  std::string ToString() const;
};

/// The only way simulated peers communicate: an unreliable, seeded message
/// bus over the event loop. Every `Send` consults the fault schedule — a
/// deterministic function of the seed and the send order — to decide drop,
/// duplication, and delay, and honours the current partition set. Every
/// decision is appended to a trace; two runs with the same seed and the
/// same send sequence produce byte-identical traces, which is the
/// foundation of the DST harness's replay invariant.
class SimNetwork {
 public:
  /// `loop` is not owned and must outlive the network.
  SimNetwork(EventLoop* loop, uint64_t seed);

  /// Fault profile applied to every link (per-link profiles are a later
  /// extension; one profile is enough to exercise every code path).
  void set_faults(const LinkFaults& faults) { faults_ = faults; }
  const LinkFaults& faults() const { return faults_; }

  /// Replaces the delivery-delay model (default: `uniform`, the legacy
  /// profile — byte-identical traces to the pre-model network). Must be
  /// set before the first Send; the trace header names the active model.
  void set_model(std::unique_ptr<NetworkModel> model);
  const NetworkModel& model() const { return *model_; }

  /// The event loop this network schedules on (peers use it for their own
  /// timers, e.g. relay sub-scan timeouts).
  EventLoop* loop() { return loop_; }

  /// Registers the handler that receives messages addressed to `node`.
  /// Messages to unregistered nodes vanish (traced as lost).
  using Handler = std::function<void(const std::string& src, const Message&)>;
  void Register(const std::string& node, Handler handler);

  /// Symmetric partition management. While {a, b} is partitioned, every
  /// message between them is blocked (and counted) at send time.
  void Partition(const std::string& a, const std::string& b);
  void Heal(const std::string& a, const std::string& b);
  void HealAll();
  bool IsPartitioned(const std::string& a, const std::string& b) const;
  /// Current partition pairs, sorted.
  std::vector<std::pair<std::string, std::string>> Partitions() const;

  /// Sends `message` from `src` to `dst`, scheduling zero, one, or two
  /// delivery events per the fault schedule.
  void Send(const std::string& src, const std::string& dst, Message message);

  const MessageStats& stats() const { return stats_; }
  MessageStats* mutable_stats() { return &stats_; }

  /// The deterministic event trace, one line per network decision.
  const std::vector<std::string>& trace() const { return trace_; }
  std::string TraceString() const;
  void AppendTrace(const std::string& line);

  /// Attaches a span collector (borrowed, nullable — null disables). Each
  /// hop gets a `message` span opened at Send under the then-current span
  /// and closed at delivery (`outcome` = delivered / dropped / partitioned /
  /// lost); a duplicated message gets a second span of its own. Spans are
  /// detached from the scope stack because delivery closes them from
  /// event-loop callbacks, out of stack order.
  void set_obs_trace(obs::TraceContext* trace) { obs_trace_ = trace; }

 private:
  void ScheduleDelivery(const std::string& src, const std::string& dst,
                        const Message& message, bool duplicate);
  obs::SpanId StartMessageSpan(const std::string& src, const std::string& dst,
                               const Message& message, bool duplicate);
  void EndMessageSpan(obs::SpanId span, const char* outcome);

  EventLoop* loop_;  // not owned
  obs::TraceContext* obs_trace_ = nullptr;  // not owned; may be null
  Rng rng_;
  LinkFaults faults_;
  std::unique_ptr<NetworkModel> model_;
  std::map<std::string, Handler> handlers_;
  std::set<std::pair<std::string, std::string>> partitions_;  // ordered pairs
  MessageStats stats_;
  std::vector<std::string> trace_;
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_SIM_NETWORK_H_
