#ifndef PDMS_SIM_NETWORK_MODEL_H_
#define PDMS_SIM_NETWORK_MODEL_H_

#include <map>
#include <memory>
#include <string>

#include "pdms/core/cost_estimator.h"
#include "pdms/sim/message.h"
#include "pdms/util/rng.h"
#include "pdms/util/status.h"

namespace pdms {
namespace sim {

struct LinkFaults;

/// Pluggable delivery-delay model for the simulated network
/// (docs/network_cost_model.md), in the spirit of Graphite's network-model
/// factory: SimNetwork asks the model how long each accepted message takes
/// to arrive, and everything else — drop/duplicate draws, partitions,
/// tracing — stays in SimNetwork, identical across models.
///
/// Contract: DeliveryDelayMs must be deterministic in (its own state, the
/// call sequence, `rng`) and must draw from `rng` in a fixed per-call
/// pattern, because the DST replay invariant hashes the whole trace. The
/// `uniform` model reproduces the legacy computation byte-for-byte
/// (min_delay + one jitter draw iff jitter > 0); richer models keep the
/// same jitter draw so fault schedules stay comparable across models.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// The factory name this model was created under.
  virtual const char* name() const = 0;

  /// Delay until `message` (already accepted for delivery) reaches `dst`.
  /// `now_ms` is the virtual send time; `rng` is the network's fault
  /// stream. Stateful models (contention) advance their queues here.
  virtual double DeliveryDelayMs(const std::string& src,
                                 const std::string& dst,
                                 const Message& message, double now_ms,
                                 const LinkFaults& faults, Rng* rng) = 0;

  /// Creates a model by factory name:
  ///   - "uniform": the legacy profile — LinkFaults' min_delay + jitter,
  ///     topology-blind. `links` may be null.
  ///   - "latency-bandwidth": per-link latency plus per-message overhead
  ///     plus message-size serialization delay from the LinkMap.
  ///   - "contention": latency-bandwidth plus a FIFO queue per trunk
  ///     (LinkMap::TrunkKey): a message waits for the trunk to free up,
  ///     then occupies it for its overhead + serialization time.
  /// The non-uniform models require `links` (borrowed, must outlive the
  /// model) and fail with kInvalidArgument without one or on an unknown
  /// name.
  static Result<std::unique_ptr<NetworkModel>> Create(const std::string& type,
                                                      const LinkMap* links);
};

}  // namespace sim
}  // namespace pdms

#endif  // PDMS_SIM_NETWORK_MODEL_H_
