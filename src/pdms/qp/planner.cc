#include "pdms/qp/planner.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>
#include <utility>

#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace qp {
namespace {

// Per-atom compilation scratch: filters derivable from the atom alone.
struct AtomInfo {
  size_t atom_index = 0;
  std::string relation;
  size_t arity = 0;
  std::vector<std::pair<size_t, Value>> const_eq;
  std::vector<std::pair<size_t, size_t>> dup_eq;
  // Slot -> first column of that slot within this atom.
  std::vector<std::pair<size_t, size_t>> slot_first_col;
  // Column -> slot for every variable position (repeats included).
  std::vector<std::pair<size_t, size_t>> var_cols;
  double est_rows = 0;
};

double EstimateScanRows(const AtomInfo& a, const Database& db,
                        const ColumnarCatalog& catalog) {
  const Relation* rel = db.Find(a.relation);
  if (rel == nullptr || rel->arity() != a.arity) return 0;
  const TableStats* stats = catalog.stats(a.relation);
  if (stats == nullptr) return static_cast<double>(rel->size());
  double est = static_cast<double>(stats->rows);
  for (const auto& [col, value] : a.const_eq) {
    (void)value;
    size_t d = col < stats->distinct.size() ? stats->distinct[col] : 0;
    est /= static_cast<double>(std::max<size_t>(d, 1));
  }
  for (const auto& [col, first] : a.dup_eq) {
    (void)first;
    size_t d = col < stats->distinct.size() ? stats->distinct[col] : 0;
    est /= static_cast<double>(std::max<size_t>(d, 1));
  }
  return est;
}

// 1 / (selectivity denominator) of an equality join on `cols`.
double JoinSelectivity(const std::string& relation,
                       const std::vector<size_t>& cols,
                       const ColumnarCatalog& catalog) {
  const TableStats* stats = catalog.stats(relation);
  double sel = 1.0;
  for (size_t col : cols) {
    size_t d = (stats != nullptr && col < stats->distinct.size())
                   ? stats->distinct[col]
                   : 1;
    sel /= static_cast<double>(std::max<size_t>(d, 1));
  }
  return sel;
}

std::string ScanSignature(const PlannedScan& scan,
                          const std::vector<size_t>& key_cols) {
  std::string sig = "k:";
  for (size_t c : key_cols) sig += StrFormat("%zu,", c);
  sig += "|c:";
  for (const auto& [col, value] : scan.const_eq) {
    sig += StrFormat("%zu=", col);
    sig += value.ToString();
    sig += ",";
  }
  sig += "|d:";
  for (const auto& [col, first] : scan.dup_eq) {
    sig += StrFormat("%zu=%zu,", col, first);
  }
  return sig;
}

}  // namespace

Result<DisjunctPlan> PlanDisjunct(const ConjunctiveQuery& cq,
                                  const Database& db,
                                  const ColumnarCatalog& catalog,
                                  const NetCostFn& net_cost) {
  PDMS_RETURN_IF_ERROR(cq.CheckSafe());
  DisjunctPlan plan;
  if (cq.body().empty()) {
    plan.delegate_legacy = true;
    return plan;
  }

  // Slot assignment mirrors the legacy SlotProgram: first appearance across
  // the body atoms, then the comparisons, so slot names line up between the
  // engines when debugging side by side.
  std::unordered_map<std::string, size_t> slot_of;
  auto slot_for = [&](const std::string& var) {
    auto [it, inserted] = slot_of.emplace(var, slot_of.size());
    if (inserted) plan.slot_names.push_back(var);
    return it->second;
  };

  std::vector<AtomInfo> atoms;
  atoms.reserve(cq.body().size());
  std::set<std::string> seen_relations;
  for (size_t ai = 0; ai < cq.body().size(); ++ai) {
    const Atom& atom = cq.body()[ai];
    AtomInfo info;
    info.atom_index = ai;
    info.relation = atom.predicate();
    info.arity = atom.arity();
    std::unordered_map<size_t, size_t> first_col;  // slot -> column
    for (size_t col = 0; col < atom.args().size(); ++col) {
      const Term& t = atom.args()[col];
      if (t.is_constant()) {
        info.const_eq.emplace_back(col, t.value());
        continue;
      }
      size_t slot = slot_for(t.var_name());
      info.var_cols.emplace_back(col, slot);
      auto [it, inserted] = first_col.emplace(slot, col);
      if (inserted) {
        info.slot_first_col.emplace_back(slot, col);
      } else {
        info.dup_eq.emplace_back(col, it->second);
      }
    }
    info.est_rows = EstimateScanRows(info, db, catalog);
    atoms.push_back(std::move(info));
    if (seen_relations.insert(atom.predicate()).second) {
      plan.relations.push_back(atom.predicate());
    }
  }

  plan.comparisons.reserve(cq.comparisons().size());
  std::vector<std::vector<size_t>> cmp_slots(cq.comparisons().size());
  auto compile_term = [&](const Term& t, size_t ci) {
    PlanTerm out;
    if (t.is_constant()) {
      out.is_const = true;
      out.value = t.value();
    } else {
      out.slot = slot_for(t.var_name());
      cmp_slots[ci].push_back(out.slot);
    }
    return out;
  };
  for (size_t ci = 0; ci < cq.comparisons().size(); ++ci) {
    const Comparison& c = cq.comparisons()[ci];
    PlanComparison pc;
    pc.op = c.op;
    pc.lhs = compile_term(c.lhs, ci);
    pc.rhs = compile_term(c.rhs, ci);
    plan.comparisons.push_back(std::move(pc));
    if (cmp_slots[ci].empty()) plan.const_comparisons.push_back(ci);
  }
  plan.num_slots = plan.slot_names.size();

  // Greedy join ordering: start from the cheapest filtered scan, then
  // repeatedly join the atom minimizing the estimated output cardinality
  // (est_in * est_scan * equality selectivity over the shared variables),
  // preferring connected atoms over cross products. Ties keep the lowest
  // body position, so plans are deterministic.
  std::vector<bool> used(atoms.size(), false);
  std::vector<bool> bound(plan.num_slots, false);
  std::vector<bool> cmp_done(plan.comparisons.size(), false);
  for (size_t ci : plan.const_comparisons) cmp_done[ci] = true;
  double est_in = 0;
  for (size_t step_no = 0; step_no < atoms.size(); ++step_no) {
    size_t best = atoms.size();
    double best_cost = std::numeric_limits<double>::infinity();
    bool best_connected = false;
    std::vector<size_t> best_key_cols, best_key_slots;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const AtomInfo& a = atoms[i];
      std::vector<size_t> key_cols, key_slots;
      for (const auto& [col, slot] : a.var_cols) {
        if (bound[slot]) {
          key_cols.push_back(col);
          key_slots.push_back(slot);
        }
      }
      bool connected = !key_cols.empty();
      double cost;
      if (step_no == 0) {
        cost = a.est_rows;
        connected = true;  // no intermediate yet; everything qualifies
      } else {
        cost = est_in * a.est_rows *
               JoinSelectivity(a.relation, key_cols, catalog);
      }
      bool better;
      if (connected != best_connected) {
        better = connected;  // connected beats cross product outright
      } else {
        better = cost < best_cost;
      }
      if (best == atoms.size() || better) {
        best = i;
        best_cost = cost;
        best_connected = connected;
        best_key_cols = std::move(key_cols);
        best_key_slots = std::move(key_slots);
      }
    }
    PDMS_DCHECK(best < atoms.size());
    used[best] = true;
    const AtomInfo& a = atoms[best];

    PlannedStep step;
    step.scan.atom_index = a.atom_index;
    step.scan.relation = a.relation;
    step.scan.arity = a.arity;
    step.scan.const_eq = a.const_eq;
    step.scan.dup_eq = a.dup_eq;
    step.scan.est_rows = a.est_rows;
    for (const auto& [slot, col] : a.slot_first_col) {
      if (!bound[slot]) {
        step.scan.binds.emplace_back(col, slot);
        bound[slot] = true;
      }
    }
    step.key_cols = std::move(best_key_cols);
    step.key_slots = std::move(best_key_slots);
    step.scan.signature = ScanSignature(step.scan, step.key_cols);
    if (step_no == 0) {
      step.est_out = a.est_rows;
      step.build_on_atom = true;
    } else {
      step.est_out = best_cost;
      // Build the hash table over whichever side is estimated smaller;
      // the scan side's table is cacheable across queries.
      step.build_on_atom = a.est_rows <= est_in;
    }
    est_in = step.est_out;

    for (size_t ci = 0; ci < plan.comparisons.size(); ++ci) {
      if (cmp_done[ci]) continue;
      bool ready = true;
      for (size_t slot : cmp_slots[ci]) {
        if (!bound[slot]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        step.comparisons.push_back(ci);
        cmp_done[ci] = true;
      }
    }
    plan.steps.push_back(std::move(step));
  }

  plan.head.reserve(cq.head().arity());
  for (const Term& t : cq.head().args()) {
    PlanTerm h;
    if (t.is_constant()) {
      h.is_const = true;
      h.value = t.value();
    } else {
      auto it = slot_of.find(t.var_name());
      PDMS_CHECK_MSG(it != slot_of.end(), "unsafe head variable");
      h.slot = it->second;
    }
    plan.head.push_back(std::move(h));
  }

  // Dead-slot pruning, computed backwards: a step's output must carry a
  // slot only while something downstream still reads it. A step's own
  // comparisons read its freshly gathered intermediate, so their slots are
  // live in that step's mask; its join keys read the *previous*
  // intermediate, so they join the running set after the mask is taken.
  std::vector<char> live(plan.num_slots, 0);
  for (const PlanTerm& h : plan.head) {
    if (!h.is_const) live[h.slot] = 1;
  }
  for (size_t si = plan.steps.size(); si-- > 0;) {
    PlannedStep& step = plan.steps[si];
    for (size_t ci : step.comparisons) {
      const PlanComparison& c = plan.comparisons[ci];
      if (!c.lhs.is_const) live[c.lhs.slot] = 1;
      if (!c.rhs.is_const) live[c.rhs.slot] = 1;
    }
    step.live_after = live;
    for (size_t slot : step.key_slots) live[slot] = 1;
  }
  if (net_cost != nullptr) {
    for (PlannedStep& step : plan.steps) {
      step.scan.est_net_ms = net_cost(step.scan.relation);
    }
  }
  return plan;
}

Result<UnionPlan> PlanUnion(const UnionQuery& uq, const Database& db,
                            const ColumnarCatalog& catalog,
                            const NetCostFn& net_cost) {
  UnionPlan plan;
  std::set<std::string> relations;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    PDMS_ASSIGN_OR_RETURN(DisjunctPlan dp,
                          PlanDisjunct(cq, db, catalog, net_cost));
    for (const std::string& r : dp.relations) relations.insert(r);
    plan.disjuncts.push_back(std::move(dp));
  }
  plan.relations.assign(relations.begin(), relations.end());
  plan.stats_fingerprint = catalog.StatsFingerprint(plan.relations);
  return plan;
}

std::string RenderDisjunctPlan(const DisjunctPlan& plan,
                               const ConjunctiveQuery& cq, size_t index,
                               const std::vector<size_t>* actual_rows) {
  std::string out = StrFormat("disjunct %zu: ", index);
  out += cq.ToString();
  out += "\n";
  if (plan.delegate_legacy) {
    out += "  constant body (legacy evaluation)\n";
    return out;
  }
  auto actual = [&](size_t i) -> std::string {
    if (actual_rows == nullptr || i >= actual_rows->size()) return "";
    return StrFormat(" actual=%zu", (*actual_rows)[i]);
  };
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const PlannedStep& s = plan.steps[i];
    std::string filters;
    if (!s.scan.const_eq.empty() || !s.scan.dup_eq.empty()) {
      filters = StrFormat(" filters=%zu",
                          s.scan.const_eq.size() + s.scan.dup_eq.size());
    }
    // Printed only when annotated, so plans without a cost model render
    // exactly as before.
    if (s.scan.est_net_ms > 0) {
      filters += StrFormat(" net=%.1fms", s.scan.est_net_ms);
    }
    if (i == 0) {
      out += StrFormat("  scan %s%s est=%.1f%s\n", s.scan.relation.c_str(),
                       filters.c_str(), s.est_out, actual(i).c_str());
    } else {
      std::string keys;
      for (size_t k = 0; k < s.key_slots.size(); ++k) {
        if (k > 0) keys += ",";
        keys += plan.slot_names[s.key_slots[k]];
      }
      if (keys.empty()) keys = "<cross>";
      out += StrFormat("  hash-join %s keys[%s] build=%s%s est=%.1f%s\n",
                       s.scan.relation.c_str(), keys.c_str(),
                       s.build_on_atom ? "scan" : "intermediate",
                       filters.c_str(), s.est_out, actual(i).c_str());
    }
  }
  out += StrFormat("  project -> %zu cols%s\n", plan.head.size(),
                   actual(plan.steps.size()).c_str());
  return out;
}

}  // namespace qp
}  // namespace pdms
