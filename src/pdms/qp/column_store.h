#ifndef PDMS_QP_COLUMN_STORE_H_
#define PDMS_QP_COLUMN_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/obs/metrics.h"

namespace pdms {
namespace qp {

/// Rows processed per inner-loop batch by the vectorized operators. Large
/// enough to amortize per-batch dispatch, small enough that a batch of
/// codes for a handful of columns stays cache-resident.
inline constexpr size_t kBatchRows = 1024;

/// A fixed-width encoded cell: the value kind plus a 64-bit payload (the
/// integer itself, the labeled-null id, or the dictionary id of a string).
/// Two codes from the same dictionary are equal iff the Values they encode
/// are equal, so joins and duplicate elimination run on 16-byte
/// comparisons with no string traffic.
struct Code {
  int64_t payload = 0;
  uint8_t kind = 0;  // Value::Kind

  bool operator==(const Code& o) const {
    return kind == o.kind && payload == o.payload;
  }
  bool operator!=(const Code& o) const { return !(*this == o); }
};

inline uint64_t CodeHash(const Code& c) {
  uint64_t h = static_cast<uint64_t>(c.payload) + 0x9e3779b97f4a7c15ULL +
               (static_cast<uint64_t>(c.kind) << 56);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

/// Append-only string dictionary shared by every columnar relation of one
/// engine. Ids are assigned in first-intern order, so a given conversion
/// sequence is deterministic; ids are private to the engine and never
/// escape into answers (projection decodes back to Values).
class StringDict {
 public:
  uint32_t Intern(const std::string& s);
  /// The id of `s` if it was ever interned; nullopt otherwise (a constant
  /// that appears in no stored column can match nothing by equality).
  std::optional<uint32_t> Find(const std::string& s) const;
  const std::string& At(size_t id) const { return strings_[id]; }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> ids_;
};

/// The columnar twin of one Relation: one contiguous code vector per
/// column, rows in the relation's insertion order (row i of every column
/// is tuple i).
struct ColumnarRelation {
  size_t arity = 0;
  size_t rows = 0;
  std::vector<std::vector<Code>> cols;
};

/// Per-relation statistics the cost-based planner consumes: cardinality
/// and per-column distinct-value counts (hash-based, exact modulo 64-bit
/// hash collisions). Maintained incrementally as rows are appended.
struct TableStats {
  size_t rows = 0;
  std::vector<size_t> distinct;

  /// Estimated rows matching an equality selection on `col`.
  double SelectEq(size_t col) const {
    if (col >= distinct.size() || distinct[col] == 0) return 0;
    return static_cast<double>(rows) / static_cast<double>(distinct[col]);
  }
};

/// Open-addressing hash index from 64-bit key hashes to chains of entry
/// indices. Everything lives in flat vectors — no per-bucket allocation,
/// and a probe usually touches one cache line before walking its chain.
/// Chains iterate in ascending entry order regardless of build order, so
/// probe output order — and with it the whole execution — stays a pure
/// function of the data (docs/query_planning.md, determinism rules).
class FlatTable {
 public:
  /// Builds from one key hash per entry; capacity is the next power of two
  /// at least twice the entry count, so linear probing always terminates.
  void Build(const std::vector<uint64_t>& hashes);

  /// First entry index whose key hash equals `h`, or -1.
  int32_t Head(uint64_t h) const {
    if (slot_head_.empty()) return -1;
    size_t j = h & mask_;
    while (slot_head_[j] >= 0) {
      if (slot_hash_[j] == h) return slot_head_[j];
      j = (j + 1) & mask_;
    }
    return -1;
  }

  /// The entry chained after `idx` under the same hash, or -1.
  int32_t Next(int32_t idx) const { return next_[idx]; }

 private:
  size_t mask_ = 0;
  std::vector<int32_t> slot_head_;   // -1 = empty slot
  std::vector<uint64_t> slot_hash_;  // key hash resident in the slot
  std::vector<int32_t> next_;        // per entry: chain successor
};

/// A hash table over the join-key columns of a (filtered) stored relation,
/// built once and cached until the relation changes: the index chains
/// entries in `rows` order, keeping probe output deterministic. Cached
/// tables are what lets a hot serving query skip straight to probing.
struct JoinTable {
  std::vector<size_t> key_cols;  // first-occurrence columns
  std::vector<uint32_t> rows;    // filtered row ids, in row order
  FlatTable index;               // entry i <-> rows[i]
};

/// Caches the columnar twins, their statistics, and the per-relation join
/// tables of one engine, keyed by relation name. Conversion is incremental:
/// an entry tracks `(source pointer, rebuild_version, rows)`, so an
/// append-only insert converts just the new suffix (this is how "stats are
/// collected incrementally on fact insert" lands — Pdms::Insert touches
/// the entry eagerly), while a destructive mutation or a different source
/// relation rebuilds from scratch.
///
/// Not internally synchronized: callers Ensure every relation (and
/// prebuild join tables) before fanning execution out; parallel execution
/// then only reads (docs/query_planning.md, determinism rules).
class ColumnarCatalog {
 public:
  /// Converts (or incrementally refreshes) the columnar twin of `rel`.
  /// With a registry attached, accumulates `qp.stats_rows_appended` /
  /// `qp.stats_rebuilds`.
  const ColumnarRelation* Ensure(const Relation& rel,
                                 obs::MetricsRegistry* metrics = nullptr);

  /// The columnar twin of an ensured relation; null if never ensured.
  const ColumnarRelation* Find(const std::string& name) const;

  /// Statistics of an ensured relation; null if never ensured.
  const TableStats* stats(const std::string& name) const;

  /// The cached join table for `signature` on an ensured relation, or
  /// null. Signatures encode key columns plus the scan filters the table
  /// was built over.
  const JoinTable* FindJoinTable(const std::string& relation,
                                 const std::string& signature) const;
  /// Stores a built table (droped automatically when the relation's rows
  /// change). A small per-relation cap guards memory.
  const JoinTable* StoreJoinTable(const std::string& relation,
                                  const std::string& signature,
                                  JoinTable table);

  StringDict* dict() { return &dict_; }
  const StringDict& dict() const { return dict_; }

  Code Encode(const Value& v);
  /// Encodes without interning: a string missing from the dictionary
  /// yields nullopt (it cannot equal any stored cell).
  std::optional<Code> EncodeExisting(const Value& v) const;
  Value Decode(const Code& c) const;

  /// A fingerprint over the statistics of the named relations (rows +
  /// distinct counts). Physical plans embed it; a mismatch at execution
  /// time forces a replan (docs/query_planning.md, plan caching).
  uint64_t StatsFingerprint(const std::vector<std::string>& relations) const;

 private:
  struct Entry {
    const Relation* src = nullptr;
    uint64_t rebuild_version = 0;
    ColumnarRelation data;
    TableStats stats;
    std::vector<std::unordered_set<uint64_t>> distinct_hashes;
    std::map<std::string, std::unique_ptr<JoinTable>> join_tables;
  };

  void AppendRows(Entry* entry, const Relation& rel, size_t from_row);

  std::map<std::string, Entry, std::less<>> entries_;
  StringDict dict_;
};

/// Converts a columnar relation (plus the dictionary that encoded it) back
/// to a row Relation, preserving row order. Round-trips exactly
/// (tests/qp_test.cc).
Relation ToRowRelation(const std::string& name, const ColumnarRelation& col,
                       const StringDict& dict);

}  // namespace qp
}  // namespace pdms

#endif  // PDMS_QP_COLUMN_STORE_H_
