#include "pdms/qp/column_store.h"

#include <utility>

#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace qp {
namespace {

// Cap on cached join tables per relation; beyond it the map is dropped
// wholesale (simple, and hit only by pathological plan diversity).
constexpr size_t kMaxJoinTablesPerRelation = 32;

uint64_t MixStat(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

void FlatTable::Build(const std::vector<uint64_t>& hashes) {
  size_t n = hashes.size();
  next_.assign(n, -1);
  if (n == 0) {
    mask_ = 0;
    slot_head_.clear();
    slot_hash_.clear();
    return;
  }
  size_t cap = 8;
  while (cap < 2 * n) cap <<= 1;
  mask_ = cap - 1;
  slot_head_.assign(cap, -1);
  slot_hash_.assign(cap, 0);
  // Inserting in reverse with push-front chaining leaves every chain in
  // ascending entry order, which is the determinism contract.
  for (size_t i = n; i-- > 0;) {
    uint64_t h = hashes[i];
    size_t j = h & mask_;
    while (slot_head_[j] >= 0 && slot_hash_[j] != h) j = (j + 1) & mask_;
    slot_hash_[j] = h;
    next_[i] = slot_head_[j];
    slot_head_[j] = static_cast<int32_t>(i);
  }
}

uint32_t StringDict::Intern(const std::string& s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.push_back(s);
  ids_.emplace(s, id);
  return id;
}

std::optional<uint32_t> StringDict::Find(const std::string& s) const {
  auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

Code ColumnarCatalog::Encode(const Value& v) {
  Code c;
  c.kind = static_cast<uint8_t>(v.kind());
  switch (v.kind()) {
    case Value::Kind::kNull:
      c.payload = v.null_id();
      break;
    case Value::Kind::kInt:
      c.payload = v.int_value();
      break;
    case Value::Kind::kString:
      c.payload = dict_.Intern(v.string_value());
      break;
  }
  return c;
}

std::optional<Code> ColumnarCatalog::EncodeExisting(const Value& v) const {
  Code c;
  c.kind = static_cast<uint8_t>(v.kind());
  switch (v.kind()) {
    case Value::Kind::kNull:
      c.payload = v.null_id();
      break;
    case Value::Kind::kInt:
      c.payload = v.int_value();
      break;
    case Value::Kind::kString: {
      std::optional<uint32_t> id = dict_.Find(v.string_value());
      if (!id.has_value()) return std::nullopt;
      c.payload = *id;
      break;
    }
  }
  return c;
}

Value ColumnarCatalog::Decode(const Code& c) const {
  switch (static_cast<Value::Kind>(c.kind)) {
    case Value::Kind::kNull:
      return Value::Null(c.payload);
    case Value::Kind::kInt:
      return Value::Int(c.payload);
    case Value::Kind::kString:
      return Value::String(dict_.At(static_cast<size_t>(c.payload)));
  }
  PDMS_CHECK_MSG(false, "bad code kind");
  return Value::Int(0);
}

void ColumnarCatalog::AppendRows(Entry* entry, const Relation& rel,
                                 size_t from_row) {
  const std::vector<Tuple>& tuples = rel.tuples();
  for (size_t row = from_row; row < tuples.size(); ++row) {
    const Tuple& t = tuples[row];
    for (size_t col = 0; col < rel.arity(); ++col) {
      Code c = Encode(t[col]);
      entry->data.cols[col].push_back(c);
      if (entry->distinct_hashes[col].insert(CodeHash(c)).second) {
        ++entry->stats.distinct[col];
      }
    }
  }
  entry->data.rows = tuples.size();
  entry->stats.rows = tuples.size();
  entry->rebuild_version = rel.rebuild_version();
  entry->src = &rel;
}

const ColumnarRelation* ColumnarCatalog::Ensure(const Relation& rel,
                                                obs::MetricsRegistry* metrics) {
  Entry& entry = entries_[rel.name()];
  const bool same_src = entry.src == &rel &&
                        entry.rebuild_version == rel.rebuild_version() &&
                        entry.data.arity == rel.arity();
  if (same_src && entry.data.rows == rel.size()) return &entry.data;

  size_t from_row = 0;
  if (same_src && entry.data.rows < rel.size()) {
    // Appends only since last Ensure: convert just the new suffix.
    from_row = entry.data.rows;
  } else {
    entry.data = ColumnarRelation{};
    entry.data.arity = rel.arity();
    entry.data.cols.assign(rel.arity(), {});
    entry.stats = TableStats{};
    entry.stats.distinct.assign(rel.arity(), 0);
    entry.distinct_hashes.assign(rel.arity(), {});
    if (metrics != nullptr) metrics->Add("qp.stats_rebuilds", 1);
  }
  size_t appended = rel.size() - from_row;
  AppendRows(&entry, rel, from_row);
  entry.join_tables.clear();
  if (metrics != nullptr && appended > 0) {
    metrics->Add("qp.stats_rows_appended", static_cast<int64_t>(appended));
  }
  return &entry.data;
}

const ColumnarRelation* ColumnarCatalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return &it->second.data;
}

const TableStats* ColumnarCatalog::stats(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return &it->second.stats;
}

const JoinTable* ColumnarCatalog::FindJoinTable(
    const std::string& relation, const std::string& signature) const {
  auto it = entries_.find(relation);
  if (it == entries_.end()) return nullptr;
  auto jt = it->second.join_tables.find(signature);
  if (jt == it->second.join_tables.end()) return nullptr;
  return jt->second.get();
}

const JoinTable* ColumnarCatalog::StoreJoinTable(const std::string& relation,
                                                 const std::string& signature,
                                                 JoinTable table) {
  auto it = entries_.find(relation);
  if (it == entries_.end()) return nullptr;
  auto& tables = it->second.join_tables;
  if (tables.size() >= kMaxJoinTablesPerRelation) tables.clear();
  auto owned = std::make_unique<JoinTable>(std::move(table));
  const JoinTable* raw = owned.get();
  tables[signature] = std::move(owned);
  return raw;
}

uint64_t ColumnarCatalog::StatsFingerprint(
    const std::vector<std::string>& relations) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::string& name : relations) {
    for (char ch : name) h = MixStat(h, static_cast<uint64_t>(ch));
    const TableStats* s = stats(name);
    if (s == nullptr) {
      h = MixStat(h, 0xdeadULL);
      continue;
    }
    h = MixStat(h, s->rows);
    for (size_t d : s->distinct) h = MixStat(h, d);
  }
  return h;
}

Relation ToRowRelation(const std::string& name, const ColumnarRelation& col,
                       const StringDict& dict) {
  Relation out(name, col.arity);
  for (size_t row = 0; row < col.rows; ++row) {
    Tuple t;
    t.reserve(col.arity);
    for (size_t c = 0; c < col.arity; ++c) {
      const Code& code = col.cols[c][row];
      switch (static_cast<Value::Kind>(code.kind)) {
        case Value::Kind::kNull:
          t.push_back(Value::Null(code.payload));
          break;
        case Value::Kind::kInt:
          t.push_back(Value::Int(code.payload));
          break;
        case Value::Kind::kString:
          t.push_back(Value::String(dict.At(static_cast<size_t>(code.payload))));
          break;
      }
    }
    out.Insert(std::move(t));
  }
  return out;
}

}  // namespace qp
}  // namespace pdms
