#ifndef PDMS_QP_PHYSICAL_PLAN_H_
#define PDMS_QP_PHYSICAL_PLAN_H_

#include <memory>
#include <mutex>
#include <utility>

namespace pdms {
namespace qp {

/// Opaque base of a compiled physical plan. The concrete type (qp::UnionPlan)
/// is engine-internal; the rest of the system only stores and hands back the
/// handle. Plans are logical artifacts — join orders, build sides, and
/// estimates keyed by relation *names* — so one plan is valid for any engine
/// whose statistics match its embedded fingerprint (worker facades with
/// separate but identical databases share plans through the PlanCache).
struct PhysicalPlanHandle {
  virtual ~PhysicalPlanHandle() = default;
};

/// A thread-safe, shareable slot for the physical plan compiled for one
/// cached rewriting. cache::PlanCache stores one slot per Plan entry; every
/// facade that hits that entry shares the slot, so the first execution's
/// planning work is reused by all of them. The engine validates the stats
/// fingerprint before trusting a cached plan and overwrites the slot on
/// mismatch (docs/query_planning.md, plan caching).
class PhysicalPlanSlot {
 public:
  std::shared_ptr<const PhysicalPlanHandle> Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plan_;
  }
  void Set(std::shared_ptr<const PhysicalPlanHandle> plan) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = std::move(plan);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const PhysicalPlanHandle> plan_;
};

}  // namespace qp
}  // namespace pdms

#endif  // PDMS_QP_PHYSICAL_PLAN_H_
