#ifndef PDMS_QP_VECTORIZED_H_
#define PDMS_QP_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "pdms/data/database.h"
#include "pdms/exec/thread_pool.h"
#include "pdms/qp/column_store.h"
#include "pdms/qp/planner.h"
#include "pdms/util/status.h"

namespace pdms {
namespace qp {

/// Probe sides below this many rows run serially even with a pool — the
/// partition bookkeeping costs more than it saves.
inline constexpr size_t kParallelProbeThreshold = 4096;

/// Runs a planned scan's pushed-down filters over the columnar relation,
/// returning the surviving row ids in row order. A constant that cannot be
/// encoded against `catalog`'s dictionary (a string the data never
/// mentions) short-circuits to zero rows.
std::vector<uint32_t> RunScanFilter(const PlannedScan& scan,
                                    const ColumnarRelation& data,
                                    const ColumnarCatalog& catalog);

/// Builds the cacheable hash table for a join step's scan side: filtered
/// rows plus a FlatTable keyed by the hash of the key columns' codes,
/// chains in row order.
JoinTable BuildJoinTable(const PlannedScan& scan,
                         const std::vector<size_t>& key_cols,
                         const ColumnarRelation& data,
                         const ColumnarCatalog& catalog);

/// Observed per-step output cardinalities (one per step, then the final
/// distinct answer count) — the "actual" side of the explain output.
using StepActuals = std::vector<size_t>;

/// Executes one disjunct's physical plan against `db` through `catalog`,
/// returning the projected, deduplicated head tuples in a deterministic
/// order (probe order, which is fixed by the plan).
///
/// `catalog` is read only — every relation must have been Ensure'd (and
/// scan-side join tables ideally prebuilt) before the call, which is what
/// makes concurrent disjunct execution safe. With `pool` attached, hash
/// join probes over >= kParallelProbeThreshold rows are partitioned across
/// workers; partitions are contiguous row ranges concatenated in order, so
/// the output is byte-identical to the serial probe.
Result<std::vector<Tuple>> ExecuteDisjunct(const DisjunctPlan& plan,
                                           const Database& db,
                                           const ColumnarCatalog& catalog,
                                           exec::ThreadPool* pool,
                                           StepActuals* actuals);

}  // namespace qp
}  // namespace pdms

#endif  // PDMS_QP_VECTORIZED_H_
