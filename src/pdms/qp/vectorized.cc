#include "pdms/qp/vectorized.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "pdms/exec/parallel_for.h"
#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace qp {
namespace {

constexpr uint64_t kKeySeed = 0xcbf29ce484222325ULL;

// The running join state: one code vector per bound slot, all the same
// length. Unbound slots have empty vectors.
struct Intermediate {
  size_t rows = 0;
  std::vector<std::vector<Code>> slot_cols;
  std::vector<char> bound;
};

// (intermediate row, scan row) matches of one join step, in probe order.
using MatchPairs = std::vector<std::pair<uint32_t, uint32_t>>;

uint64_t ScanKeyHash(const ColumnarRelation& data,
                     const std::vector<size_t>& cols, uint32_t row) {
  uint64_t h = kKeySeed;
  for (size_t c : cols) h = HashCombine(h, CodeHash(data.cols[c][row]));
  return h;
}

uint64_t RowKeyHash(const Intermediate& in, const std::vector<size_t>& slots,
                    size_t row) {
  uint64_t h = kKeySeed;
  for (size_t s : slots) h = HashCombine(h, CodeHash(in.slot_cols[s][row]));
  return h;
}

bool KeysEqual(const Intermediate& in, size_t in_row,
               const std::vector<size_t>& slots, const ColumnarRelation& data,
               const std::vector<size_t>& cols, uint32_t scan_row) {
  for (size_t k = 0; k < slots.size(); ++k) {
    if (in.slot_cols[slots[k]][in_row] != data.cols[cols[k]][scan_row]) {
      return false;
    }
  }
  return true;
}

// Splits [0, n) into contiguous ranges sized for the pool; `probe` fills
// one MatchPairs per range, and the ranges are concatenated in order, so
// the result is byte-identical to a single serial probe.
template <typename ProbeRange>
MatchPairs PartitionedProbe(exec::ThreadPool* pool, size_t n,
                            const ProbeRange& probe) {
  size_t chunks = 1;
  if (pool != nullptr && pool->workers() > 0 && n >= kParallelProbeThreshold) {
    chunks = std::min(pool->workers() + 1, n / (kParallelProbeThreshold / 2));
    chunks = std::max<size_t>(chunks, 1);
  }
  if (chunks == 1) {
    MatchPairs out;
    probe(0, n, &out);
    return out;
  }
  std::vector<MatchPairs> parts(chunks);
  size_t per = (n + chunks - 1) / chunks;
  exec::ParallelFor(pool, chunks, [&](size_t k) {
    size_t begin = k * per;
    size_t end = std::min(n, begin + per);
    if (begin < end) probe(begin, end, &parts[k]);
  });
  MatchPairs out;
  size_t total = 0;
  for (const MatchPairs& p : parts) total += p.size();
  out.reserve(total);
  for (MatchPairs& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

// Whether a step's output intermediate must carry `slot` (empty mask =
// keep everything, the conservative legacy-plan shape).
bool LiveAfter(const PlannedStep& step, size_t slot) {
  return step.live_after.empty() || step.live_after[slot] != 0;
}

// Gathers the next intermediate from the match pairs: bound slots come
// from the previous intermediate (left row), newly bound columns from the
// scan (right row). Slots nothing downstream reads are dropped, so deep
// pipelines move only the live columns.
Intermediate GatherJoin(const Intermediate& prev, const MatchPairs& pairs,
                        const PlannedStep& step, const ColumnarRelation& data,
                        size_t num_slots) {
  Intermediate next;
  next.rows = pairs.size();
  next.bound.assign(num_slots, 0);
  next.slot_cols.assign(num_slots, {});
  for (size_t s = 0; s < num_slots; ++s) {
    if (!prev.bound[s] || !LiveAfter(step, s)) continue;
    next.bound[s] = 1;
    std::vector<Code>& col = next.slot_cols[s];
    col.resize(pairs.size());
    const std::vector<Code>& src = prev.slot_cols[s];
    for (size_t i = 0; i < pairs.size(); ++i) col[i] = src[pairs[i].first];
  }
  for (const auto& [scan_col, slot] : step.scan.binds) {
    if (!LiveAfter(step, slot)) continue;
    std::vector<Code>& col = next.slot_cols[slot];
    col.resize(pairs.size());
    const std::vector<Code>& src = data.cols[scan_col];
    for (size_t i = 0; i < pairs.size(); ++i) col[i] = src[pairs[i].second];
    next.bound[slot] = 1;
  }
  return next;
}

// Applies the comparisons attached to a step, compacting the intermediate
// in place. Decoding is per surviving row; integer-only comparisons never
// touch the dictionary (Decode copies the string for string codes).
void ApplyComparisons(const DisjunctPlan& plan, const PlannedStep& step,
                      const ColumnarCatalog& catalog, Intermediate* in) {
  if (step.comparisons.empty() || in->rows == 0) return;
  std::vector<uint32_t> keep;
  keep.reserve(in->rows);
  for (size_t row = 0; row < in->rows; ++row) {
    bool ok = true;
    for (size_t ci : step.comparisons) {
      const PlanComparison& c = plan.comparisons[ci];
      Value lhs = c.lhs.is_const ? c.lhs.value
                                 : catalog.Decode(in->slot_cols[c.lhs.slot][row]);
      Value rhs = c.rhs.is_const ? c.rhs.value
                                 : catalog.Decode(in->slot_cols[c.rhs.slot][row]);
      if (!EvalCmp(c.op, lhs, rhs)) {
        ok = false;
        break;
      }
    }
    if (ok) keep.push_back(static_cast<uint32_t>(row));
  }
  if (keep.size() == in->rows) return;
  for (std::vector<Code>& col : in->slot_cols) {
    if (col.empty()) continue;
    std::vector<Code> next(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) next[i] = col[keep[i]];
    col = std::move(next);
  }
  in->rows = keep.size();
}

}  // namespace

std::vector<uint32_t> RunScanFilter(const PlannedScan& scan,
                                    const ColumnarRelation& data,
                                    const ColumnarCatalog& catalog) {
  std::vector<uint32_t> out;
  // Encode the pushed-down constants once; a constant the dictionary has
  // never seen matches nothing.
  std::vector<std::pair<size_t, Code>> const_eq;
  const_eq.reserve(scan.const_eq.size());
  for (const auto& [col, value] : scan.const_eq) {
    std::optional<Code> code = catalog.EncodeExisting(value);
    if (!code.has_value()) return out;
    const_eq.emplace_back(col, *code);
  }
  if (const_eq.empty() && scan.dup_eq.empty()) {
    out.resize(data.rows);
    for (size_t row = 0; row < data.rows; ++row) {
      out[row] = static_cast<uint32_t>(row);
    }
    return out;
  }
  // Batch-at-a-time selection so the surviving-row vector grows in chunks
  // and each column stays hot while its batch is checked.
  for (size_t base = 0; base < data.rows; base += kBatchRows) {
    size_t end = std::min(data.rows, base + kBatchRows);
    for (size_t row = base; row < end; ++row) {
      bool ok = true;
      for (const auto& [col, code] : const_eq) {
        if (data.cols[col][row] != code) {
          ok = false;
          break;
        }
      }
      for (size_t i = 0; ok && i < scan.dup_eq.size(); ++i) {
        const auto& [col, first] = scan.dup_eq[i];
        if (data.cols[col][row] != data.cols[first][row]) ok = false;
      }
      if (ok) out.push_back(static_cast<uint32_t>(row));
    }
  }
  return out;
}

JoinTable BuildJoinTable(const PlannedScan& scan,
                         const std::vector<size_t>& key_cols,
                         const ColumnarRelation& data,
                         const ColumnarCatalog& catalog) {
  JoinTable table;
  table.key_cols = key_cols;
  table.rows = RunScanFilter(scan, data, catalog);
  std::vector<uint64_t> hashes(table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    hashes[i] = ScanKeyHash(data, key_cols, table.rows[i]);
  }
  table.index.Build(hashes);
  return table;
}

Result<std::vector<Tuple>> ExecuteDisjunct(const DisjunctPlan& plan,
                                           const Database& db,
                                           const ColumnarCatalog& catalog,
                                           exec::ThreadPool* pool,
                                           StepActuals* actuals) {
  PDMS_CHECK_MSG(!plan.delegate_legacy, "legacy disjunct reached qp executor");
  std::vector<Tuple> out;
  auto bail = [&]() -> std::vector<Tuple> {
    // Record zero cardinality for the remaining steps so explain output
    // stays aligned with the plan.
    if (actuals != nullptr) {
      while (actuals->size() < plan.steps.size() + 1) actuals->push_back(0);
    }
    return {};
  };
  for (size_t ci : plan.const_comparisons) {
    const PlanComparison& c = plan.comparisons[ci];
    if (!EvalCmp(c.op, c.lhs.value, c.rhs.value)) return bail();
  }

  Intermediate in;
  in.slot_cols.assign(plan.num_slots, {});
  in.bound.assign(plan.num_slots, 0);
  for (size_t si = 0; si < plan.steps.size(); ++si) {
    const PlannedStep& step = plan.steps[si];
    const Relation* rel = db.Find(step.scan.relation);
    if (rel == nullptr || rel->arity() != step.scan.arity) return bail();
    const ColumnarRelation* data = catalog.Find(step.scan.relation);
    PDMS_CHECK_MSG(data != nullptr, "relation not ensured in catalog");

    if (si == 0) {
      std::vector<uint32_t> rows = RunScanFilter(step.scan, *data, catalog);
      in.rows = rows.size();
      for (const auto& [scan_col, slot] : step.scan.binds) {
        if (!LiveAfter(step, slot)) continue;
        std::vector<Code>& col = in.slot_cols[slot];
        col.resize(rows.size());
        const std::vector<Code>& src = data->cols[scan_col];
        for (size_t i = 0; i < rows.size(); ++i) col[i] = src[rows[i]];
        in.bound[slot] = 1;
      }
    } else if (step.key_cols.empty()) {
      // Cross product, intermediate-major: deterministic and rare (only
      // disconnected bodies reach here).
      std::vector<uint32_t> rows = RunScanFilter(step.scan, *data, catalog);
      MatchPairs pairs;
      pairs.reserve(in.rows * rows.size());
      for (size_t i = 0; i < in.rows; ++i) {
        for (uint32_t r : rows) {
          pairs.emplace_back(static_cast<uint32_t>(i), r);
        }
      }
      in = GatherJoin(in, pairs, step, *data, plan.num_slots);
    } else if (step.build_on_atom) {
      // Build (or reuse the cached) hash table over the filtered scan,
      // probe the intermediate in row order.
      const JoinTable* table =
          catalog.FindJoinTable(step.scan.relation, step.scan.signature);
      JoinTable local;
      if (table == nullptr) {
        local = BuildJoinTable(step.scan, step.key_cols, *data, catalog);
        table = &local;
      }
      MatchPairs pairs = PartitionedProbe(
          pool, in.rows, [&](size_t begin, size_t end, MatchPairs* dst) {
            for (size_t i = begin; i < end; ++i) {
              uint64_t h = RowKeyHash(in, step.key_slots, i);
              for (int32_t e = table->index.Head(h); e >= 0;
                   e = table->index.Next(e)) {
                uint32_t r = table->rows[static_cast<size_t>(e)];
                if (KeysEqual(in, i, step.key_slots, *data, step.key_cols,
                              r)) {
                  dst->emplace_back(static_cast<uint32_t>(i), r);
                }
              }
            }
          });
      in = GatherJoin(in, pairs, step, *data, plan.num_slots);
    } else {
      // Build over the (smaller) intermediate, probe the filtered scan in
      // row order.
      std::vector<uint32_t> rows;
      const JoinTable* cached =
          catalog.FindJoinTable(step.scan.relation, step.scan.signature);
      if (cached != nullptr) {
        rows = cached->rows;
      } else {
        rows = RunScanFilter(step.scan, *data, catalog);
      }
      std::vector<uint64_t> in_hashes(in.rows);
      for (size_t i = 0; i < in.rows; ++i) {
        in_hashes[i] = RowKeyHash(in, step.key_slots, i);
      }
      FlatTable built;
      built.Build(in_hashes);
      MatchPairs pairs = PartitionedProbe(
          pool, rows.size(), [&](size_t begin, size_t end, MatchPairs* dst) {
            for (size_t k = begin; k < end; ++k) {
              uint32_t r = rows[k];
              uint64_t h = ScanKeyHash(*data, step.key_cols, r);
              for (int32_t e = built.Head(h); e >= 0; e = built.Next(e)) {
                uint32_t i = static_cast<uint32_t>(e);
                if (KeysEqual(in, i, step.key_slots, *data, step.key_cols,
                              r)) {
                  dst->emplace_back(i, r);
                }
              }
            }
          });
      in = GatherJoin(in, pairs, step, *data, plan.num_slots);
    }

    ApplyComparisons(plan, step, catalog, &in);
    if (actuals != nullptr) actuals->push_back(in.rows);
    if (in.rows == 0) return bail();
  }

  // Project and deduplicate in probe order. Two rows project to the same
  // tuple iff their head-slot codes agree (codes from one dictionary are
  // injective), so dedup runs entirely on codes and only the distinct
  // rows pay the decode back to Values.
  std::vector<size_t> head_slots;
  head_slots.reserve(plan.head.size());
  for (const PlanTerm& h : plan.head) {
    if (!h.is_const) head_slots.push_back(h.slot);
  }
  std::unordered_map<uint64_t, std::vector<uint32_t>> seen;
  std::vector<uint32_t> distinct;
  distinct.reserve(std::min<size_t>(in.rows, 1024));
  for (size_t row = 0; row < in.rows; ++row) {
    uint64_t hash = kKeySeed;
    for (size_t s : head_slots) {
      hash = HashCombine(hash, CodeHash(in.slot_cols[s][row]));
    }
    std::vector<uint32_t>& bucket = seen[hash];
    bool dup = false;
    for (uint32_t rep : bucket) {
      bool equal = true;
      for (size_t s : head_slots) {
        if (in.slot_cols[s][row] != in.slot_cols[s][rep]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    bucket.push_back(static_cast<uint32_t>(row));
    distinct.push_back(static_cast<uint32_t>(row));
  }
  out.reserve(distinct.size());
  for (uint32_t row : distinct) {
    Tuple tuple;
    tuple.reserve(plan.head.size());
    for (const PlanTerm& h : plan.head) {
      tuple.push_back(h.is_const ? h.value
                                 : catalog.Decode(in.slot_cols[h.slot][row]));
    }
    out.push_back(std::move(tuple));
  }
  if (actuals != nullptr) actuals->push_back(out.size());
  return out;
}

}  // namespace qp
}  // namespace pdms
