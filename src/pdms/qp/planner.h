#ifndef PDMS_QP_PLANNER_H_
#define PDMS_QP_PLANNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pdms/data/database.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/qp/column_store.h"
#include "pdms/qp/physical_plan.h"
#include "pdms/util/status.h"

namespace pdms {
namespace qp {

/// A compiled term: an inline constant Value or a slot index. Constants
/// stay as Values (not Codes) so a plan is dictionary-independent and can
/// be shared across engines; execution encodes them against its own
/// dictionary when it binds the plan to data.
struct PlanTerm {
  bool is_const = false;
  Value value;      // when is_const
  size_t slot = 0;  // when !is_const
};

/// A compiled comparison predicate.
struct PlanComparison {
  CmpOp op = CmpOp::kEq;
  PlanTerm lhs, rhs;
};

/// One columnar scan with its pushed-down filters: constant equality on a
/// column, equality between two columns (a variable repeated inside the
/// atom), and the columns that bind new slots (first occurrence of each
/// variable).
struct PlannedScan {
  size_t atom_index = 0;  // into cq.body()
  std::string relation;
  size_t arity = 0;
  std::vector<std::pair<size_t, Value>> const_eq;  // column == constant
  std::vector<std::pair<size_t, size_t>> dup_eq;   // column == earlier column
  std::vector<std::pair<size_t, size_t>> binds;    // column -> new slot
  double est_rows = 0;  // after filters
  /// Estimated network round trip to fetch this relation, in virtual ms
  /// (docs/network_cost_model.md); 0 when no cost annotator was supplied
  /// or the relation is local. Explain-only — join order, build-side
  /// choice, and answers never read it.
  double est_net_ms = 0;
  /// Identifies (filters, key columns) for join-table caching; filled by
  /// the planner for join steps.
  std::string signature;
};

/// One step of a disjunct's physical plan: the first step is a bare scan;
/// each later step hash-joins the running intermediate with one more scan.
struct PlannedStep {
  PlannedScan scan;
  /// Join keys: slot already bound in the intermediate <-> column of the
  /// scan. Empty on the first step, and on a cross product.
  std::vector<size_t> key_slots;
  std::vector<size_t> key_cols;
  /// True: hash table is built over the (filtered) scan — cacheable in the
  /// catalog — and the intermediate probes. False: built over the
  /// intermediate, the scan probes (chosen when the intermediate is
  /// estimated smaller).
  bool build_on_atom = true;
  /// Comparisons (indices into DisjunctPlan::comparisons) whose variables
  /// are all bound once this step completes; applied as a filter here.
  std::vector<size_t> comparisons;
  /// Per slot: whether this step's output intermediate must carry the
  /// slot's column (it is read by this step's comparisons, a later join
  /// key, a later comparison, or the head projection). Gathers skip dead
  /// slots, so deep chain joins stay linear in the number of *live*
  /// columns rather than all columns ever bound. Empty = keep everything.
  std::vector<char> live_after;
  double est_out = 0;  // estimated intermediate rows after this step
};

/// The physical plan of one disjunct.
struct DisjunctPlan {
  /// Empty-body disjuncts keep the legacy evaluation (a single empty
  /// match gated by ground comparisons); nothing to vectorize.
  bool delegate_legacy = false;
  size_t num_slots = 0;
  std::vector<std::string> slot_names;  // per slot, first-appearance order
  std::vector<PlanComparison> comparisons;
  /// Comparisons with no variables at all, checked once before execution.
  std::vector<size_t> const_comparisons;
  std::vector<PlannedStep> steps;
  std::vector<PlanTerm> head;
  /// Distinct relations scanned, in body order (fingerprint + prep).
  std::vector<std::string> relations;
};

/// The compiled physical plan of a whole union query; this is what sits in
/// a PhysicalPlanSlot next to the cached rewriting.
struct UnionPlan : public PhysicalPlanHandle {
  /// ColumnarCatalog::StatsFingerprint over every relation the plan scans,
  /// taken at planning time. Execution replans when its catalog disagrees.
  uint64_t stats_fingerprint = 0;
  /// Distinct relations across all disjuncts, sorted (fingerprint input).
  std::vector<std::string> relations;
  std::vector<DisjunctPlan> disjuncts;
};

/// Optional per-relation network-cost annotator: maps a stored relation
/// name to its estimated fetch round trip in virtual ms (typically
/// CostEstimator::ScanCostMs). Stamps PlannedScan::est_net_ms for explain
/// output; never consulted for join ordering, so a null annotator and a
/// live one plan identically.
using NetCostFn = std::function<double(const std::string&)>;

/// Plans one disjunct: pushes constant/duplicate filters into the scans,
/// orders the joins greedily by estimated output cardinality (statistics
/// from `catalog`; relations missing from `db` estimate to zero rows), and
/// picks each join's build side. The query must be safe (CheckSafe).
Result<DisjunctPlan> PlanDisjunct(const ConjunctiveQuery& cq,
                                  const Database& db,
                                  const ColumnarCatalog& catalog,
                                  const NetCostFn& net_cost = nullptr);

/// Plans every disjunct and stamps the stats fingerprint.
Result<UnionPlan> PlanUnion(const UnionQuery& uq, const Database& db,
                            const ColumnarCatalog& catalog,
                            const NetCostFn& net_cost = nullptr);

/// Renders one disjunct's plan as an indented text block:
///
///   disjunct 0: q(x, z) :- r(x, y), s(y, z)
///     scan s est=12 actual=12
///     hash-join r keys[y] build=scan est=40.0 actual=37
///     project -> 2 cols, est=40.0 actual=31
///
/// `actual_rows` (nullable) carries observed per-step output cardinalities
/// followed by the final distinct answer count, as produced by execution;
/// without it the "actual=" fields are omitted.
std::string RenderDisjunctPlan(const DisjunctPlan& plan,
                               const ConjunctiveQuery& cq, size_t index,
                               const std::vector<size_t>* actual_rows);

}  // namespace qp
}  // namespace pdms

#endif  // PDMS_QP_PLANNER_H_
