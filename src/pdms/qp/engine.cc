#include "pdms/qp/engine.h"

#include <optional>
#include <set>
#include <utility>

#include "pdms/exec/parallel_for.h"
#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace qp {

Result<std::shared_ptr<const UnionPlan>> Engine::PlanOrReuse(
    const UnionQuery& uq, const Database& db, obs::TraceContext* trace,
    obs::MetricsRegistry* metrics, PhysicalPlanSlot* slot) {
  obs::ScopedSpan plan_span(trace, "qp.plan");
  plan_span.Set("disjuncts", static_cast<uint64_t>(uq.size()));

  // Refresh the columnar twins (and with them the statistics) of every
  // relation the union scans, so both the fingerprint check and a fresh
  // plan see current cardinalities.
  std::set<std::string> seen;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    for (const Atom& a : cq.body()) {
      if (!seen.insert(a.predicate()).second) continue;
      const Relation* rel = db.Find(a.predicate());
      if (rel != nullptr) catalog_.Ensure(*rel, metrics);
    }
  }

  if (slot != nullptr) {
    std::shared_ptr<const PhysicalPlanHandle> cached = slot->Get();
    const auto* plan = dynamic_cast<const UnionPlan*>(cached.get());
    if (plan != nullptr && plan->disjuncts.size() == uq.size() &&
        plan->stats_fingerprint ==
            catalog_.StatsFingerprint(plan->relations)) {
      plan_span.Set("cached", true);
      if (metrics != nullptr) metrics->Add("qp.plan_reused", 1);
      return std::shared_ptr<const UnionPlan>(std::move(cached), plan);
    }
  }

  PDMS_ASSIGN_OR_RETURN(UnionPlan fresh,
                        PlanUnion(uq, db, catalog_, net_cost_));
  auto owned = std::make_shared<const UnionPlan>(std::move(fresh));
  if (slot != nullptr) slot->Set(owned);
  plan_span.Set("cached", false);
  if (metrics != nullptr) metrics->Add("qp.plans", 1);
  return owned;
}

Result<DegradedEvalResult> Engine::EvaluateUnionDegraded(
    const UnionQuery& uq, const Database& db, const StoredGate& gate,
    obs::TraceContext* trace, obs::MetricsRegistry* metrics,
    exec::ThreadPool* pool, PhysicalPlanSlot* slot) {
  DegradedEvalResult out;
  if (uq.empty()) return out;
  out.answers = Relation(uq.disjuncts()[0].head().predicate(),
                         uq.disjuncts()[0].head().arity());

  PDMS_ASSIGN_OR_RETURN(std::shared_ptr<const UnionPlan> plan,
                        PlanOrReuse(uq, db, trace, metrics, slot));

  obs::ScopedSpan exec_span(trace, "qp.exec");
  std::set<std::string> unavailable;

  // Gating stays serial and in disjunct order — the loop below matches the
  // legacy evaluator probe for probe, so AccessStats and the
  // DegradationReport are byte-identical to it. Surviving disjuncts are
  // collected and executed afterwards; their eval_cq/join spans are opened
  // (and closed) here, in disjunct order, so the span tree is identical
  // whether execution later runs serially or fans out.
  struct PendingExec {
    size_t disjunct;
    obs::SpanId cq_span;
    obs::SpanId join_span;
  };
  std::vector<PendingExec> pending;
  size_t index = 0;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    if (cq.head().arity() != out.answers.arity()) {
      return Status::InvalidArgument(
          StrFormat("union disjuncts disagree on arity (%zu vs %zu)",
                    out.answers.arity(), cq.head().arity()));
    }
    obs::ScopedSpan cq_span(trace, "eval_cq");
    cq_span.Set("disjunct", static_cast<uint64_t>(index));
    cq_span.Set("atoms", static_cast<uint64_t>(cq.body().size()));
    bool skipped = false;
    if (gate) {
      std::set<std::string> seen;
      for (const Atom& a : cq.body()) {
        if (!seen.insert(a.predicate()).second) continue;
        Status s = gate(a.predicate());
        if (s.ok()) continue;
        if (s.code() != StatusCode::kUnavailable) return s;
        unavailable.insert(a.predicate());
        skipped = true;
        // Keep gating the remaining relations: each probe is recorded in
        // the access stats, and later disjuncts reuse the cached verdicts.
      }
    }
    if (skipped) {
      ++out.disjuncts_skipped;
      cq_span.Set("skipped", true);
      ++index;
      continue;
    }
    const DisjunctPlan& dp = plan->disjuncts[index];
    if (!dp.delegate_legacy && !dp.steps.empty()) {
      cq_span.Set("est", dp.steps.back().est_out);
    }
    obs::ScopedSpan join_span(trace, "join");
    pending.push_back({index, cq_span.id(), join_span.id()});
    ++index;
  }

  // Prepare phase (serial; the only catalog mutation after planning):
  // build the cacheable scan-side hash tables the surviving plans need.
  // Execution below then only reads the catalog, which is what makes the
  // disjunct fan-out safe.
  for (const PendingExec& p : pending) {
    const DisjunctPlan& dp = plan->disjuncts[p.disjunct];
    if (dp.delegate_legacy) continue;
    for (const PlannedStep& step : dp.steps) {
      if (!step.build_on_atom || step.key_cols.empty()) continue;
      if (catalog_.FindJoinTable(step.scan.relation, step.scan.signature) !=
          nullptr) {
        continue;
      }
      const ColumnarRelation* data = catalog_.Find(step.scan.relation);
      if (data == nullptr) continue;  // relation absent: scan yields nothing
      catalog_.StoreJoinTable(
          step.scan.relation, step.scan.signature,
          BuildJoinTable(step.scan, step.key_cols, *data, catalog_));
      if (metrics != nullptr) metrics->Add("qp.join_tables_built", 1);
    }
  }

  // Execute the surviving disjuncts — ParallelFor falls back to a serial
  // in-order loop without a pool, and shard merging below is in disjunct
  // order either way, so answers cannot depend on the thread count.
  std::vector<std::optional<Result<std::vector<Tuple>>>> shards(
      pending.size());
  exec::ParallelFor(pool, pending.size(), [&](size_t k) {
    const DisjunctPlan& dp = plan->disjuncts[pending[k].disjunct];
    const ConjunctiveQuery& cq = uq.disjuncts()[pending[k].disjunct];
    if (dp.delegate_legacy) {
      Result<Relation> r = EvaluateCQ(cq, db);
      if (!r.ok()) {
        shards[k].emplace(r.status());
      } else {
        shards[k].emplace(r->TakeTuples());
      }
      return;
    }
    shards[k].emplace(ExecuteDisjunct(dp, db, catalog_, pool, nullptr));
  });

  for (size_t k = 0; k < pending.size(); ++k) {
    Result<std::vector<Tuple>>& shard = *shards[k];
    if (!shard.ok()) return shard.status();
    if (trace != nullptr) {
      uint64_t n = static_cast<uint64_t>(shard->size());
      trace->SetAttribute(pending[k].join_span, "answers", n);
      trace->SetAttribute(pending[k].cq_span, "answers", n);
    }
    for (Tuple& t : *shard) out.answers.Insert(std::move(t));
  }

  // Canonical answer order: byte-identical output across engines, thread
  // counts, and cache states (docs/query_planning.md, determinism rules).
  out.answers.SortCanonical();
  exec_span.Set("answers", static_cast<uint64_t>(out.answers.size()));
  exec_span.End();

  out.unavailable_relations.assign(unavailable.begin(), unavailable.end());
  if (metrics != nullptr) {
    metrics->Add("eval.disjuncts", uq.size());
    metrics->Add("eval.disjuncts_skipped", out.disjuncts_skipped);
    metrics->Add("eval.answers", out.answers.size());
    metrics->Add("qp.exec_disjuncts", pending.size());
  }
  return out;
}

Result<std::string> Engine::Explain(const UnionQuery& uq, const Database& db) {
  std::string out;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    for (const Atom& a : cq.body()) {
      const Relation* rel = db.Find(a.predicate());
      if (rel != nullptr) catalog_.Ensure(*rel);
    }
  }
  size_t index = 0;
  size_t total = 0;
  for (const ConjunctiveQuery& cq : uq.disjuncts()) {
    PDMS_ASSIGN_OR_RETURN(DisjunctPlan dp,
                          PlanDisjunct(cq, db, catalog_, net_cost_));
    StepActuals actuals;
    if (dp.delegate_legacy) {
      PDMS_ASSIGN_OR_RETURN(Relation part, EvaluateCQ(cq, db));
      actuals.push_back(part.size());
      total += part.size();
    } else {
      PDMS_ASSIGN_OR_RETURN(
          std::vector<Tuple> tuples,
          ExecuteDisjunct(dp, db, catalog_, nullptr, &actuals));
      total += tuples.size();
    }
    out += RenderDisjunctPlan(dp, cq, index, &actuals);
    ++index;
  }
  out += StrFormat("%zu disjunct(s), %zu answer row(s) before union dedup\n",
                   uq.size(), total);
  return out;
}

void Engine::ObserveRelation(const Relation& rel,
                             obs::MetricsRegistry* metrics) {
  catalog_.Ensure(rel, metrics);
}

}  // namespace qp
}  // namespace pdms
