#ifndef PDMS_QP_ENGINE_H_
#define PDMS_QP_ENGINE_H_

#include <memory>
#include <string>

#include "pdms/data/database.h"
#include "pdms/eval/evaluator.h"
#include "pdms/exec/thread_pool.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/qp/column_store.h"
#include "pdms/qp/physical_plan.h"
#include "pdms/qp/planner.h"
#include "pdms/qp/vectorized.h"
#include "pdms/util/status.h"

namespace pdms {
namespace qp {

/// The vectorized query engine: owns a ColumnarCatalog (columnar twins,
/// statistics, cached join tables) and evaluates union queries through
/// cost-based physical plans. One engine belongs to one facade, like the
/// Database it shadows; it is not internally synchronized.
///
/// Contract (docs/query_planning.md): EvaluateUnionDegraded returns the
/// same answers, degradation report, and `eval.*` metrics as the legacy
/// eval::EvaluateUnionDegraded — gating is serial and in disjunct order,
/// verbatim — except that the answer relation is canonically sorted
/// (Relation::SortCanonical), which makes answers byte-identical across
/// engines, thread counts, and plan-cache states.
class Engine {
 public:
  /// Vectorized degraded union evaluation. With `slot` attached the
  /// compiled physical plan is cached there (next to the rewriting in the
  /// PlanCache) and reused while the catalog's statistics fingerprint
  /// matches; with a pool attached surviving disjuncts fan out and large
  /// hash-join probes are partitioned. Spans: `qp.plan` (planning /
  /// reuse), `qp.exec` (gating + execution, the per-disjunct `eval_cq` /
  /// `join` spans nested under it with estimated and actual cardinality
  /// attributes).
  Result<DegradedEvalResult> EvaluateUnionDegraded(
      const UnionQuery& uq, const Database& db, const StoredGate& gate,
      obs::TraceContext* trace = nullptr,
      obs::MetricsRegistry* metrics = nullptr, exec::ThreadPool* pool = nullptr,
      PhysicalPlanSlot* slot = nullptr);

  /// Plans and executes every disjunct (ungated), returning the rendered
  /// physical plans with estimated vs actual per-step cardinalities — the
  /// shell's `plan` command.
  Result<std::string> Explain(const UnionQuery& uq, const Database& db);

  /// Eagerly refreshes the columnar twin and statistics of `rel` (the
  /// fact-insert hook: appends convert incrementally).
  void ObserveRelation(const Relation& rel,
                       obs::MetricsRegistry* metrics = nullptr);

  ColumnarCatalog* catalog() { return &catalog_; }

  /// Per-relation network-cost annotator handed to the planner
  /// (docs/network_cost_model.md): freshly compiled plans carry
  /// PlannedScan::est_net_ms for explain output. Explain-only — plans,
  /// join orders, and answers are identical with or without it. Callers
  /// whose cost estimator is shorter-lived than the engine (SimPdms builds
  /// one per query) must reset it before the estimator dies.
  void set_net_cost(NetCostFn net_cost) { net_cost_ = std::move(net_cost); }

 private:
  /// Reuses the plan in `slot` when its fingerprint still matches this
  /// catalog; otherwise compiles a fresh plan (and publishes it to the
  /// slot, if any). Relations are Ensure'd first so statistics are
  /// current.
  Result<std::shared_ptr<const UnionPlan>> PlanOrReuse(
      const UnionQuery& uq, const Database& db, obs::TraceContext* trace,
      obs::MetricsRegistry* metrics, PhysicalPlanSlot* slot);

  ColumnarCatalog catalog_;
  NetCostFn net_cost_;  // nullable; see set_net_cost
};

}  // namespace qp
}  // namespace pdms

#endif  // PDMS_QP_ENGINE_H_
