#ifndef PDMS_MINICON_REWRITE_H_
#define PDMS_MINICON_REWRITE_H_

#include <vector>

#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {

/// Options for the standalone MiniCon rewriting algorithm.
struct MiniConOptions {
  /// Upper bound on emitted rewritings (0 = unlimited).
  size_t max_rewritings = 0;
  /// Remove rewritings contained in other rewritings and minimize each.
  bool remove_redundant = false;
};

/// Answers a conjunctive query using views (the classic two-tier LAV
/// setting [23]): given `query` over a mediated schema and `views` whose
/// heads name the available source relations (with open-world `⊆`
/// semantics), returns the maximally-contained rewriting as a union of
/// conjunctive queries over the view heads.
///
/// Implements MiniCon: per-subgoal MCD formation followed by combination of
/// MCDs with pairwise-disjoint coverage. Comparison predicates in the query
/// are kept when their variables survive into the rewriting and otherwise
/// must be implied by the view definitions' comparisons, else the candidate
/// rewriting is discarded (conservative, per the paper's footnote-3
/// approximation).
Result<UnionQuery> MiniConRewrite(const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const MiniConOptions& options = {});

}  // namespace pdms

#endif  // PDMS_MINICON_REWRITE_H_
