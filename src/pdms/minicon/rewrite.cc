#include "pdms/minicon/rewrite.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "pdms/constraints/constraint_set.h"
#include "pdms/lang/canonical.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/minicon/mcd.h"

namespace pdms {

namespace {

struct CombineContext {
  const ConjunctiveQuery* query;
  const std::vector<Mcd>* mcds;
  size_t num_subgoals;
  const MiniConOptions* options;
  std::vector<ConjunctiveQuery>* out;
  std::set<std::string> seen_keys;
};

// Assembles one rewriting from a set of MCDs with disjoint coverage.
// Returns silently when the combination is inconsistent (conflicting
// unifiers) or a query comparison cannot be enforced.
void Assemble(CombineContext& ctx, const std::vector<size_t>& chosen) {
  Substitution sigma;
  for (size_t idx : chosen) {
    if (!sigma.Merge((*ctx.mcds)[idx].unifier)) return;
  }
  Atom head = sigma.Apply(ctx.query->head());
  std::vector<Atom> body;
  body.reserve(chosen.size());
  ConstraintSet view_constraints;
  for (size_t idx : chosen) {
    body.push_back(sigma.Apply((*ctx.mcds)[idx].view_atom));
    view_constraints.AddAll((*ctx.mcds)[idx].view_constraints.Apply(sigma));
  }

  // Variables visible in the rewriting (head args are always in some body
  // atom when the combination is valid, but collect both for the check).
  std::unordered_set<std::string> available;
  {
    std::vector<std::string> vars;
    for (const Atom& a : body) CollectVariables(a, &vars);
    available.insert(vars.begin(), vars.end());
  }
  // Safety of the head: every head variable must survive into the body.
  for (const Term& t : head.args()) {
    if (t.is_variable() && available.count(t.var_name()) == 0) return;
  }
  // Query comparisons: keep if expressible over surviving variables,
  // otherwise they must be implied by the views' own comparisons.
  std::vector<Comparison> kept;
  for (const Comparison& c : ctx.query->comparisons()) {
    Comparison mapped = sigma.Apply(c);
    bool expressible = true;
    for (const Term* t : {&mapped.lhs, &mapped.rhs}) {
      if (t->is_variable() && available.count(t->var_name()) == 0) {
        expressible = false;
      }
    }
    if (expressible) {
      kept.push_back(std::move(mapped));
      continue;
    }
    if (!view_constraints.Implies(mapped)) return;
  }
  // The rewriting must itself be satisfiable together with what the views
  // guarantee.
  ConstraintSet all = view_constraints;
  for (const Comparison& c : kept) all.Add(c);
  if (!all.IsSatisfiable()) return;

  ConjunctiveQuery rewriting(std::move(head), std::move(body),
                             std::move(kept));
  std::string key = CanonicalQueryKey(rewriting);
  if (!ctx.seen_keys.insert(key).second) return;
  ctx.out->push_back(std::move(rewriting));
}

// Recursive exact-cover enumeration: cover the smallest uncovered subgoal
// with an MCD disjoint from everything chosen so far.
void Combine(CombineContext& ctx, std::vector<bool>& covered,
             size_t num_covered, std::vector<size_t>& chosen) {
  if (ctx.options->max_rewritings != 0 &&
      ctx.out->size() >= ctx.options->max_rewritings) {
    return;
  }
  if (num_covered == ctx.num_subgoals) {
    Assemble(ctx, chosen);
    return;
  }
  size_t target = 0;
  while (covered[target]) ++target;
  for (size_t i = 0; i < ctx.mcds->size(); ++i) {
    const Mcd& mcd = (*ctx.mcds)[i];
    if (std::find(mcd.covered.begin(), mcd.covered.end(), target) ==
        mcd.covered.end()) {
      continue;
    }
    bool disjoint = true;
    for (size_t idx : mcd.covered) {
      if (covered[idx]) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    for (size_t idx : mcd.covered) covered[idx] = true;
    chosen.push_back(i);
    Combine(ctx, covered, num_covered + mcd.covered.size(), chosen);
    chosen.pop_back();
    for (size_t idx : mcd.covered) covered[idx] = false;
  }
}

}  // namespace

Result<UnionQuery> MiniConRewrite(const ConjunctiveQuery& query,
                                  const std::vector<ConjunctiveQuery>& views,
                                  const MiniConOptions& options) {
  PDMS_RETURN_IF_ERROR(query.CheckSafe());
  for (const ConjunctiveQuery& v : views) PDMS_RETURN_IF_ERROR(v.CheckSafe());
  if (query.body().empty()) {
    return Status::InvalidArgument("query has an empty body");
  }

  VariableFactory fresh("_mc");
  ConstraintSet query_constraints(query.comparisons());

  // Phase 1: form MCDs. Seeding each subgoal and keeping only MCDs whose
  // smallest covered subgoal is the seed avoids generating the same MCD
  // once per covered subgoal.
  std::vector<Mcd> mcds;
  for (size_t seed = 0; seed < query.body().size(); ++seed) {
    for (const ConjunctiveQuery& view : views) {
      std::vector<Mcd> batch = MakeMcds(query.head(), query.body(), seed,
                                        view, &fresh, &query_constraints);
      for (Mcd& m : batch) {
        if (m.covered.front() == seed) mcds.push_back(std::move(m));
      }
    }
  }

  // Phase 2: combine MCDs with disjoint coverage into rewritings.
  std::vector<ConjunctiveQuery> rewritings;
  CombineContext ctx{&query, &mcds, query.body().size(), &options,
                     &rewritings, {}};
  std::vector<bool> covered(query.body().size(), false);
  std::vector<size_t> chosen;
  Combine(ctx, covered, 0, chosen);

  UnionQuery result(std::move(rewritings));
  if (options.remove_redundant) {
    result = RemoveRedundantDisjuncts(result);
  }
  return result;
}

}  // namespace pdms
