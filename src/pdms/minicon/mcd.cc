#include "pdms/minicon/mcd.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "pdms/util/strings.h"

namespace pdms {

std::string Mcd::ToString() const {
  std::string out = "MCD{";
  out += view_atom.ToString();
  out += ", covers [";
  for (size_t i = 0; i < covered.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(covered[i]);
  }
  out += "]}";
  return out;
}

namespace {

// Shared context for the recursive MCD search.
struct McdSearch {
  const Atom* local_head;
  const std::vector<Atom>* body;
  const ConjunctiveQuery* view;  // fresh-renamed
  std::unordered_set<std::string> view_all_vars;
  std::unordered_set<std::string> view_dist_vars;
  std::unordered_set<std::string> head_vars;  // local distinguished
  const ConstraintSet* local_constraints;
  std::vector<Mcd>* out;
  std::set<std::string> emitted;  // dedup keys
};

// Classifies the equivalence classes induced by the unifier over the
// variables of the covered subgoals and matched view atoms, and determines
// which additional subgoals must be covered (MiniCon property). Returns
// false if the MCD is impossible (a distinguished local variable is folded
// into a view existential).
bool FindObligations(const McdSearch& ctx, const std::set<size_t>& covered,
                     const Substitution& theta, std::set<size_t>* needed) {
  // Gather the variables in play: local vars of covered subgoals.
  std::vector<std::string> local_vars;
  for (size_t idx : covered) {
    CollectVariables((*ctx.body)[idx], &local_vars);
  }
  // Group everything by its representative under theta. For each class we
  // track: is it grounded (contains a constant), which view distinguished /
  // view existential variables it contains, and its local (query) vars.
  struct ClassInfo {
    bool grounded = false;
    std::set<std::string> view_dist;
    std::set<std::string> view_exist;
    std::set<std::string> local_members;
  };
  std::map<std::string, ClassInfo> classes;
  auto classify = [&](const std::string& var) {
    Term rep = theta.Resolve(Term::Var(var));
    std::string key = rep.ToString();
    ClassInfo& info = classes[key];
    if (rep.is_constant()) info.grounded = true;
    // Both the variable and its representative are members of the class.
    for (const std::string* name : {&var, rep.is_variable()
                                              ? &rep.var_name()
                                              : &var}) {
      if (ctx.view_dist_vars.count(*name) > 0) {
        info.view_dist.insert(*name);
      } else if (ctx.view_all_vars.count(*name) > 0) {
        info.view_exist.insert(*name);
      } else {
        info.local_members.insert(*name);
      }
    }
  };
  for (const std::string& v : local_vars) classify(v);
  // View vars of the whole view body participate in the same classes.
  for (const Atom& va : ctx.view->body()) {
    std::vector<std::string> vs;
    CollectVariables(va, &vs);
    for (const std::string& v : vs) classify(v);
  }

  needed->clear();
  for (const auto& [key, info] : classes) {
    if (info.view_exist.empty()) continue;
    // An existential view variable's value cannot be constrained from
    // outside the view: equating it with a second view variable, a
    // constant, or a distinguished variable is not realizable (the
    // paper's reason view V3 gets no MCD).
    if (info.view_exist.size() >= 2 || info.grounded ||
        !info.view_dist.empty()) {
      return false;
    }
    // The class is folded into a single view existential: every local
    // member must be non-distinguished and all of its subgoals covered by
    // this same MCD (MiniCon property C2).
    for (const std::string& x : info.local_members) {
      if (ctx.head_vars.count(x) > 0) return false;
      for (size_t j = 0; j < ctx.body->size(); ++j) {
        if (covered.count(j) > 0) continue;
        std::vector<std::string> vars_j;
        CollectVariables((*ctx.body)[j], &vars_j);
        if (std::find(vars_j.begin(), vars_j.end(), x) != vars_j.end()) {
          needed->insert(j);
        }
      }
    }
  }
  return true;
}

void EmitMcd(McdSearch& ctx, const std::set<size_t>& covered,
             const Substitution& theta) {
  Atom view_atom = theta.Apply(ctx.view->head());
  ConstraintSet view_constraints;
  for (const Comparison& c : ctx.view->comparisons()) {
    view_constraints.Add(theta.Apply(c));
  }
  if (ctx.local_constraints != nullptr) {
    // Discard MCDs whose view constraints contradict the caller's context.
    // The context is stated over pre-unification variables, so it must be
    // rewritten through theta before conjoining.
    if (!ctx.local_constraints->Apply(theta)
             .Conjoin(view_constraints)
             .IsSatisfiable()) {
      return;
    }
  } else if (!view_constraints.IsSatisfiable()) {
    return;
  }
  // Dedup: same covered set + same covered-subgoal images means the same
  // MCD was reached through a different branch order.
  std::string key = view_atom.ToString();
  for (size_t idx : covered) {
    key += "|";
    key += std::to_string(idx);
    key += theta.Apply((*ctx.body)[idx]).ToString();
  }
  if (!ctx.emitted.insert(key).second) return;

  Mcd mcd;
  mcd.view_atom = std::move(view_atom);
  mcd.covered.assign(covered.begin(), covered.end());
  mcd.unifier = theta;
  mcd.view_constraints = std::move(view_constraints);
  ctx.out->push_back(std::move(mcd));
}

void ExtendMcd(McdSearch& ctx, std::set<size_t> covered,
               Substitution theta) {
  std::set<size_t> needed;
  if (!FindObligations(ctx, covered, theta, &needed)) return;
  if (needed.empty()) {
    EmitMcd(ctx, covered, theta);
    return;
  }
  // Cover the smallest outstanding subgoal; branch over the view atoms it
  // can map to.
  size_t j = *needed.begin();
  const Atom& goal = (*ctx.body)[j];
  std::set<size_t> next_covered = covered;
  next_covered.insert(j);
  for (const Atom& w : ctx.view->body()) {
    if (w.predicate() != goal.predicate() || w.arity() != goal.arity()) {
      continue;
    }
    Substitution branch = theta;
    if (!branch.UnifyAtoms(goal, w)) continue;
    ExtendMcd(ctx, next_covered, std::move(branch));
  }
}

}  // namespace

std::vector<Mcd> MakeMcds(const Atom& local_head,
                          const std::vector<Atom>& body, size_t seed,
                          const ConjunctiveQuery& view,
                          VariableFactory* fresh,
                          const ConstraintSet* local_constraints) {
  std::vector<Mcd> out;
  ConjunctiveQuery renamed = RenameApart(view, fresh);

  McdSearch ctx;
  ctx.local_head = &local_head;
  ctx.body = &body;
  ctx.view = &renamed;
  for (const std::string& v : renamed.AllVariables()) {
    ctx.view_all_vars.insert(v);
  }
  for (const std::string& v : renamed.HeadVariables()) {
    ctx.view_dist_vars.insert(v);
  }
  std::vector<std::string> head_vars;
  CollectVariables(local_head, &head_vars);
  ctx.head_vars.insert(head_vars.begin(), head_vars.end());
  ctx.local_constraints = local_constraints;
  ctx.out = &out;

  const Atom& seed_goal = body[seed];
  for (const Atom& w : renamed.body()) {
    if (w.predicate() != seed_goal.predicate() ||
        w.arity() != seed_goal.arity()) {
      continue;
    }
    Substitution theta;
    if (!theta.UnifyAtoms(seed_goal, w)) continue;
    ExtendMcd(ctx, {seed}, std::move(theta));
  }
  return out;
}

}  // namespace pdms
