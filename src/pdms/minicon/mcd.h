#ifndef PDMS_MINICON_MCD_H_
#define PDMS_MINICON_MCD_H_

#include <vector>

#include "pdms/constraints/constraint_set.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/lang/substitution.h"

namespace pdms {

/// A MiniCon description (MCD, Pottinger & Halevy [23]): one way of using a
/// view to cover a set of subgoals of a (local) query. The key property the
/// factory enforces is the MiniCon condition: whenever a query variable is
/// mapped to an existential variable of the view,
///  (a) the variable must not be distinguished in the query, and
///  (b) *every* query subgoal mentioning the variable must be covered by
///      this same MCD (the join on that variable can only happen inside the
///      view).
///
/// In the PDMS reformulation algorithm this is exactly what lets a rule
/// node "cover its uncles" (Section 4.2, inclusion expansion): the MCD for
/// subgoal n may be forced to also cover sibling subgoals, recorded in the
/// unc label.
struct Mcd {
  /// The rewriting atom `V(Z̄)` — the view's head under the unifier. Using
  /// this atom in a rewriting stands for all covered subgoals.
  Atom view_atom;

  /// Indices (into the local query body) of the subgoals this MCD covers.
  /// Always contains the seed subgoal; sorted ascending.
  std::vector<size_t> covered;

  /// The most-general unifier accumulated while matching covered subgoals
  /// to view subgoals. Bindings mention local-query variables and the
  /// fresh-renamed view variables; merging MCD unifiers detects conflicting
  /// combinations.
  Substitution unifier;

  /// The view definition's comparison predicates under the unifier. Sound
  /// to *assume* about any tuple the view yields (used to strengthen
  /// constraint labels), never required to be checked.
  ConstraintSet view_constraints;

  std::string ToString() const;
};

/// Computes all MCDs that cover the seed subgoal `body[seed]` of the local
/// query (head `local_head`, subgoals `body`) using `view`. The view is
/// fresh-renamed internally from `fresh`, so returned variables never clash
/// with the caller's. `local_constraints`, when non-null, lets the factory
/// discard MCDs whose view constraints contradict the context (Section
/// 4.2: "the MCD will be created w.r.t. the constraints in the parent and
/// in the peer description").
///
/// Returns an empty vector when the view cannot cover the seed (e.g. a
/// distinguished variable would map to a view existential — the paper's V3
/// example).
std::vector<Mcd> MakeMcds(const Atom& local_head,
                          const std::vector<Atom>& body, size_t seed,
                          const ConjunctiveQuery& view,
                          VariableFactory* fresh,
                          const ConstraintSet* local_constraints = nullptr);

}  // namespace pdms

#endif  // PDMS_MINICON_MCD_H_
