#ifndef PDMS_CORE_PPL_PARSER_H_
#define PDMS_CORE_PPL_PARSER_H_

#include <string_view>

#include "pdms/core/network.h"
#include "pdms/data/database.h"
#include "pdms/util/status.h"

namespace pdms {

/// A parsed PPL program: the network specification plus any initial data
/// asserted with `fact` statements.
struct PplProgram {
  PdmsNetwork network;
  Database data;
};

/// Parses the textual PPL format. Statements:
///
///   // Peer schema. Relations may be declared with attribute names (kept
///   // only for documentation) or as name/arity.
///   peer FS {
///     relation Skill(sid, skill);
///     relation SameEngine/3;
///   }
///
///   // Storage description: stored relation <= (containment) or =
///   // (equality) a query over peer relations.
///   stored s1(f, e) <= FS:AssignedTo(f, e), FS:Sched(f, st, end).
///
///   // Definitional (GAV-style) peer mapping: a datalog rule over peer
///   // relations.
///   mapping FS:SameEngine(f1, f2, e) :-
///       FS:AssignedTo(f1, e), FS:AssignedTo(f2, e).
///
///   // Inclusion / equality peer mapping between two conjunctive queries
///   // sharing the interface variables listed in parentheses.
///   mapping (f1, f2) : FS:SameSkill(f1, f2)
///       <= FS:Skill(f1, s), FS:Skill(f2, s).
///   mapping (v, g, d) : ECC:Vehicle(v, g, d) = 9DC:Vehicle(v, g, d).
///
///   // Ground fact for a stored relation.
///   fact s1(7, "engine-12").
///
/// `//` and `#` start comments. Relation references inside queries use the
/// qualified `Peer:Relation` form; stored relations use bare names.
Result<PplProgram> ParsePplProgram(std::string_view text);

/// Variant that appends the parsed declarations and facts to an existing
/// network and database (used by Pdms::LoadProgram so programs can be
/// loaded incrementally — the ad-hoc extensibility the paper motivates).
Status ParsePplProgramInto(std::string_view text, PdmsNetwork* network,
                           Database* data);

}  // namespace pdms

#endif  // PDMS_CORE_PPL_PARSER_H_
