#ifndef PDMS_CORE_PDMS_H_
#define PDMS_CORE_PDMS_H_

#include <functional>
#include <memory>
#include <string_view>

#include "pdms/core/certain_answers.h"
#include "pdms/core/network.h"
#include "pdms/core/ppl_parser.h"
#include "pdms/core/reformulator.h"
#include "pdms/data/database.h"

namespace pdms {

/// The top-level facade: a peer data management system instance holding a
/// network specification and the stored data, answering queries end to end
/// (reformulate, then evaluate over the stored relations).
///
/// Typical use:
///
///   Pdms pdms;
///   PDMS_RETURN_IF_ERROR(pdms.LoadProgram(R"(
///     peer P { relation R(a, b); }
///     stored s(a, b) <= P:R(a, b).
///     fact s(1, 2).
///   )"));
///   auto answers = pdms.Answer("q(x) :- P:R(x, y).");
class Pdms {
 public:
  explicit Pdms(ReformulationOptions options = {});

  /// Parses and merges a textual PPL program (declarations and facts) into
  /// this instance.
  Status LoadProgram(std::string_view text);

  /// Mutable access to the specification; invalidates cached normalization.
  PdmsNetwork* mutable_network();
  const PdmsNetwork& network() const { return network_; }

  Database* mutable_database() { return &data_; }
  const Database& database() const { return data_; }

  /// Inserts a tuple into a stored relation (validated against the
  /// catalog).
  Status Insert(std::string_view stored_relation, Tuple tuple);

  void set_options(const ReformulationOptions& options);
  const ReformulationOptions& options() const { return options_; }

  /// Parses a query in rule syntax, e.g. `q(x) :- H:Doctor(x, h).`.
  Result<ConjunctiveQuery> ParseQuery(std::string_view text) const;

  /// Reformulates a query into a union of CQs over stored relations.
  Result<ReformulationResult> Reformulate(const ConjunctiveQuery& query);
  Result<ReformulationResult> Reformulate(std::string_view query_text);

  /// Reformulates and evaluates: the answers obtained from the stored data
  /// (all of them certain answers; all certain answers in the PTIME
  /// fragments of Section 3).
  Result<Relation> Answer(const ConjunctiveQuery& query);
  Result<Relation> Answer(std::string_view query_text);

  /// Streaming variant: each rewriting is evaluated as soon as the
  /// reformulator emits it, and every *new* answer tuple is delivered to
  /// `on_answer` immediately (return false to stop). This is the usage
  /// mode the paper optimizes for — "an important optimization is to
  /// generate the first reformulations quickly so query execution can
  /// begin" (Section 4.3). Returns all distinct answers found.
  Result<Relation> AnswerStreaming(
      const ConjunctiveQuery& query,
      const std::function<bool(const Tuple&)>& on_answer);

  /// Chase-based reference certain answers (exponentially slower; intended
  /// for validation and small instances).
  Result<Relation> CertainAnswersOracle(const ConjunctiveQuery& query,
                                        const ChaseOptions& chase = {});

  /// Provenance: the rewritings (conjunctive queries over stored
  /// relations) that actually produce `answer` for `query` on the current
  /// data — Section 2's "answers can be annotated appropriately for the
  /// user". Each returned query pinpoints which stored relations, and
  /// hence which peers' data, justify the answer. Empty when the tuple is
  /// not an answer.
  Result<std::vector<ConjunctiveQuery>> ExplainAnswer(
      const ConjunctiveQuery& query, const Tuple& answer);

  /// Section 3 complexity analysis of the current specification.
  Classification Classify() const { return network_.Classify(); }

 private:
  Reformulator* GetReformulator();

  PdmsNetwork network_;
  Database data_;
  ReformulationOptions options_;
  std::unique_ptr<Reformulator> reformulator_;  // rebuilt after mutations
};

}  // namespace pdms

#endif  // PDMS_CORE_PDMS_H_
