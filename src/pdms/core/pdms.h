#ifndef PDMS_CORE_PDMS_H_
#define PDMS_CORE_PDMS_H_

#include <functional>
#include <memory>
#include <string_view>

#include "pdms/core/certain_answers.h"
#include "pdms/core/network.h"
#include "pdms/core/ppl_parser.h"
#include "pdms/core/reformulator.h"
#include "pdms/data/database.h"
#include "pdms/fault/degradation.h"
#include "pdms/fault/fault_injector.h"
#include "pdms/fault/retry.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/qp/physical_plan.h"

namespace pdms {

namespace exec {
class ThreadPool;
}  // namespace exec

namespace qp {
class Engine;
}  // namespace qp

/// A query's full outcome: the answer tuples, the reformulation
/// statistics, and the degradation report saying exactly which sources
/// could not contribute and what it cost to find out. Under degradation
/// the answers are still sound — every tuple is a certain answer — but
/// possibly a strict subset of the fully-available result, and the
/// report's completeness verdict says which.
struct AnswerResult {
  Relation answers{"q", 0};
  ReformulationStats stats;
  DegradationReport degradation;
  /// True when the reformulation was served from the attached plan cache
  /// (always false with no cache attached). Surfaced so the serving layer
  /// can report per-window cache hit rates without reading the registry.
  bool plan_cache_hit = false;
};

/// Assembles a DegradationReport from a query's static exclusions
/// (reformulation stats) and dynamic scan failures. Shared by the
/// in-process facade and the simulated distributed runtime
/// (`sim::SimPdms`), which gather the inputs differently but must agree on
/// what the verdict means.
void FillDegradationReport(const PdmsNetwork& network,
                           const ReformulationStats& stats,
                           const std::vector<std::string>& failed_relations,
                           size_t rewritings_skipped,
                           const AccessStats& access, bool any_answers,
                           DegradationReport* report);

/// Interface to a cross-query plan cache (implemented in
/// src/pdms/cache/plan_cache.h; core sees only this hook). A plan — the
/// enumerated UCQ rewriting plus its ReformulationStats — is keyed by the
/// query's CanonicalQueryKey. The facade announces the current CacheScope
/// before every lookup; the implementation digests the network's catalog
/// change log and drops exactly the entries whose dependency footprint
/// the changes touch (docs/churn_invalidation.md), so a stale plan can
/// never be served while unrelated entries survive churn. Cached plans
/// are still *evaluated* through the degraded/gated path — caching reuses
/// the reformulation work, never the availability outcome.
class PlanCacheHook {
 public:
  struct Plan {
    UnionQuery rewriting;
    ReformulationStats stats;
    /// The physical plan compiled by the vectorized engine for this
    /// rewriting, shared by every facade that hits this entry (plans are
    /// engine-agnostic; see qp/physical_plan.h). Always non-null.
    std::shared_ptr<qp::PhysicalPlanSlot> physical =
        std::make_shared<qp::PhysicalPlanSlot>();
  };
  struct InsertOutcome {
    bool stored = false;
    /// The entry was dropped because the network changed between
    /// reformulation start and insert time (the mid-churn guard).
    bool dropped_stale = false;
    size_t evictions = 0;
  };
  virtual ~PlanCacheHook() = default;
  /// Declares the scope of subsequent Find calls; returns the number of
  /// entries the scope change invalidated.
  virtual size_t EnterScope(const CacheScope& scope) = 0;
  /// The cached plan for the canonical key in the current scope, or null.
  /// Shared ownership: the plan stays usable even if a concurrent insert
  /// evicts the entry (serving threads share one cache — a raw pointer
  /// "valid until the next call" would be unsound there).
  virtual std::shared_ptr<const Plan> Find(const std::string& canonical_key) = 0;
  /// Inserts a plan reformulated under the scope declared by EnterScope.
  /// `current_revision`/`current_epoch` are the network's values at insert
  /// time; any mismatch with the scope means the network churned while the
  /// plan was being built, and the entry is dropped.
  virtual InsertOutcome Insert(const std::string& canonical_key, Plan plan,
                               uint64_t current_revision,
                               uint64_t current_epoch) = 0;
};

/// The top-level facade: a peer data management system instance holding a
/// network specification and the stored data, answering queries end to end
/// (reformulate, then evaluate over the stored relations).
///
/// Typical use:
///
///   Pdms pdms;
///   PDMS_RETURN_IF_ERROR(pdms.LoadProgram(R"(
///     peer P { relation R(a, b); }
///     stored s(a, b) <= P:R(a, b).
///     fact s(1, 2).
///   )"));
///   auto answers = pdms.Answer("q(x) :- P:R(x, y).");
class Pdms {
 public:
  explicit Pdms(ReformulationOptions options = {});
  ~Pdms();
  Pdms(Pdms&&) noexcept;
  Pdms& operator=(Pdms&&) noexcept;

  /// Parses and merges a textual PPL program (declarations and facts) into
  /// this instance.
  Status LoadProgram(std::string_view text);

  /// Mutable access to the specification. Catalog mutations bump the
  /// network's revision; the cached normalization is revalidated against
  /// it on the next query, so stale reformulations are impossible even if
  /// the returned pointer is stored and used much later.
  PdmsNetwork* mutable_network();
  const PdmsNetwork& network() const { return network_; }

  Database* mutable_database() { return &data_; }
  const Database& database() const { return data_; }

  /// Inserts a tuple into a stored relation (validated against the
  /// catalog).
  Status Insert(std::string_view stored_relation, Tuple tuple);

  void set_options(const ReformulationOptions& options);
  const ReformulationOptions& options() const { return options_; }

  // --- Fault tolerance ---

  /// Retry policy applied when a stored-relation scan fails (see
  /// docs/fault_tolerance.md).
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Per-query deadline on simulated access time (latency + backoff).
  void set_deadline(Deadline deadline) { deadline_ = deadline; }
  const Deadline& deadline() const { return deadline_; }

  /// The fault injector consulted on every stored-relation scan (created
  /// lazily, seeded by `set_fault_seed`; null until first requested, in
  /// which case scans are assumed to always succeed).
  FaultInjector* mutable_fault_injector();
  const FaultInjector* fault_injector() const { return injector_.get(); }
  /// (Re)creates the injector with a fresh seed; profiles are discarded.
  void set_fault_seed(uint64_t seed);

  // --- Observability ---

  /// Attaches a span collector / metrics registry (borrowed, nullable —
  /// null is the zero-overhead sink; see docs/observability.md). Every
  /// public query entry clears the trace first, so one long-lived context
  /// always holds exactly the last query's span tree; the registry
  /// accumulates across queries until its own Clear.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }
  obs::TraceContext* trace() const { return trace_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // --- Cross-query caching (docs/plan_cache.md) ---

  /// Attaches a plan cache / goal memo (borrowed, nullable — null
  /// disables). Both are consulted by every answering entry point under
  /// the current (revision, availability epoch) scope; with a metrics
  /// registry attached the facade accumulates the `cache.*` counters and
  /// with a trace attached each query gets a `cache_lookup` span plus a
  /// `cache` attribute on its query span. `cache::CachingPdms` bundles a
  /// Pdms with both caches pre-wired.
  void set_plan_cache(PlanCacheHook* cache) { plan_cache_ = cache; }
  PlanCacheHook* plan_cache() const { return plan_cache_; }
  void set_goal_memo(GoalMemoHook* memo) { goal_memo_ = memo; }
  GoalMemoHook* goal_memo() const { return goal_memo_; }

  /// Parses a query in rule syntax, e.g. `q(x) :- H:Doctor(x, h).`.
  Result<ConjunctiveQuery> ParseQuery(std::string_view text) const;

  /// Reformulates a query into a union of CQs over stored relations.
  Result<ReformulationResult> Reformulate(const ConjunctiveQuery& query);
  Result<ReformulationResult> Reformulate(std::string_view query_text);

  /// Reformulates and evaluates: the answers obtained from the stored data
  /// (all of them certain answers; all certain answers in the PTIME
  /// fragments of Section 3 when every source is available).
  Result<Relation> Answer(const ConjunctiveQuery& query);
  Result<Relation> Answer(std::string_view query_text);

  /// Answer with the degradation report: sources that are unavailable in
  /// the catalog are pruned during reformulation, scans are mediated by
  /// the fault injector (with retries and the deadline), and the result
  /// carries a completeness verdict plus the excluded peers/relations and
  /// retry/timeout counters. `Answer` is equivalent to calling this and
  /// keeping only the tuples.
  Result<AnswerResult> AnswerWithReport(const ConjunctiveQuery& query);
  Result<AnswerResult> AnswerWithReport(std::string_view query_text);

  /// Streaming variant: each rewriting is evaluated as soon as the
  /// reformulator emits it, and every *new* answer tuple is delivered to
  /// `on_answer` immediately (return false to stop). This is the usage
  /// mode the paper optimizes for — "an important optimization is to
  /// generate the first reformulations quickly so query execution can
  /// begin" (Section 4.3). Returns all distinct answers found.
  Result<Relation> AnswerStreaming(
      const ConjunctiveQuery& query,
      const std::function<bool(const Tuple&)>& on_answer);

  /// Chase-based reference certain answers (exponentially slower; intended
  /// for validation and small instances).
  Result<Relation> CertainAnswersOracle(const ConjunctiveQuery& query,
                                        const ChaseOptions& chase = {});

  /// Provenance: the rewritings (conjunctive queries over stored
  /// relations) that actually produce `answer` for `query` on the current
  /// data — Section 2's "answers can be annotated appropriately for the
  /// user". Each returned query pinpoints which stored relations, and
  /// hence which peers' data, justify the answer. Empty when the tuple is
  /// not an answer.
  Result<std::vector<ConjunctiveQuery>> ExplainAnswer(
      const ConjunctiveQuery& query, const Tuple& answer);

  /// Section 3 complexity analysis of the current specification.
  Classification Classify() const { return network_.Classify(); }

  /// The vectorized query engine answering queries when
  /// `options().vectorized_eval` (the default) — lazily created, owned.
  /// Exposed for the shell's `plan` command and the engine tests.
  qp::Engine* engine();

 private:
  Reformulator* GetReformulator();
  /// The work-stealing pool backing `options().threads` (lazily created;
  /// null while threads <= 1, which keeps every path exactly the serial
  /// code). The pool has threads-1 workers: the calling thread is the
  /// remaining one — it runs tasks itself whenever it waits on a fork.
  exec::ThreadPool* Executor();
  /// The session options plus the network's current availability state
  /// and the executor for the `threads` setting.
  ReformulationOptions EffectiveOptions();
  /// Announces the current (revision, epoch, options) scope to the
  /// attached caches, recording invalidation counts; returns the
  /// effective options for this query.
  ReformulationOptions PrepareCaches();
  /// Cache-aware reformulation shared by the answering entry points:
  /// plan-cache lookup (hit returns the stored plan), miss reformulates
  /// and inserts under the mid-churn guard. `query_span` (nullable)
  /// receives the `cache` attribute; `cache_hit` (nullable) receives
  /// whether the plan came from the cache.
  Result<ReformulationResult> ReformulateCached(const ConjunctiveQuery& query,
                                                obs::ScopedSpan* query_span,
                                                bool* cache_hit = nullptr);

  PdmsNetwork network_;
  Database data_;
  ReformulationOptions options_;
  RetryPolicy retry_;
  Deadline deadline_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<exec::ThreadPool> pool_;  // see Executor()
  std::unique_ptr<qp::Engine> engine_;      // see engine()
  std::unique_ptr<Reformulator> reformulator_;  // rebuilt on revision change
  uint64_t reformulator_revision_ = 0;  // network revision it was built at
  obs::TraceContext* trace_ = nullptr;      // not owned; may be null
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; may be null
  PlanCacheHook* plan_cache_ = nullptr;      // not owned; may be null
  GoalMemoHook* goal_memo_ = nullptr;        // not owned; may be null
};

}  // namespace pdms

#endif  // PDMS_CORE_PDMS_H_
