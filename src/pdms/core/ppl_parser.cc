#include "pdms/core/ppl_parser.h"

#include <charconv>

#include "pdms/lang/parser.h"
#include "pdms/util/strings.h"

namespace pdms {

namespace {

// Declared arities beyond this are certainly typos (or fuzz input), and
// rejecting them keeps downstream reserve() calls sane.
constexpr size_t kMaxDeclaredArity = 1u << 16;

// Interface heads for inclusion/equality mappings get unique hidden
// predicates so two mappings never unify with each other.
std::string InterfacePredicate(size_t index) {
  return StrFormat("_iface%zu", index);
}

Status ParsePeer(Parser* p, PdmsNetwork* network) {
  if (p->Peek().kind != TokenKind::kIdent) {
    return p->Error("expected a peer name");
  }
  Peer peer;
  peer.name = p->Next().text;
  PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kLBrace, "'{'"));
  while (!p->Accept(TokenKind::kRBrace)) {
    if (p->Peek().kind != TokenKind::kIdent ||
        p->Peek().text != "relation") {
      return p->Error("expected 'relation' or '}' in peer block");
    }
    p->Next();  // consume 'relation'
    if (p->Peek().kind != TokenKind::kIdent) {
      return p->Error("expected a relation name");
    }
    std::string rel = p->Next().text;
    size_t arity = 0;
    if (p->Accept(TokenKind::kSlash)) {
      if (p->Peek().kind != TokenKind::kNumber) {
        return p->Error("expected an arity after '/'");
      }
      const std::string digits = p->Next().text;
      auto [end, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), arity);
      if (ec != std::errc() || end != digits.data() + digits.size() ||
          arity > kMaxDeclaredArity) {
        return p->Error("arity out of range: " + digits);
      }
    } else {
      PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kLParen, "'(' or '/'"));
      if (!p->Accept(TokenKind::kRParen)) {
        for (;;) {
          if (p->Peek().kind != TokenKind::kIdent) {
            return p->Error("expected an attribute name");
          }
          p->Next();
          ++arity;
          if (p->Accept(TokenKind::kRParen)) break;
          PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kComma, "',' or ')'"));
        }
      }
    }
    PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kSemicolon, "';'"));
    peer.relations.emplace_back(std::move(rel), arity);
  }
  return network->AddPeer(std::move(peer));
}

Status ParseStored(Parser* p, PdmsNetwork* network) {
  PDMS_ASSIGN_OR_RETURN(Atom head, p->ParseAtom());
  bool is_equality;
  if (p->Accept(TokenKind::kEq)) {
    is_equality = true;
  } else if (p->Accept(TokenKind::kLe)) {
    is_equality = false;
  } else {
    return p->Error("expected '=' or '<=' after the stored atom");
  }
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;
  PDMS_RETURN_IF_ERROR(p->ParseBody(&body, &comparisons));
  PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kDot, "'.'"));
  StorageDescription desc;
  desc.view = ConjunctiveQuery(std::move(head), std::move(body),
                               std::move(comparisons));
  desc.is_equality = is_equality;
  return network->AddStorageDescription(std::move(desc));
}

Status ParseMapping(Parser* p, PdmsNetwork* network) {
  if (p->Accept(TokenKind::kLParen)) {
    // Inclusion/equality mapping with an interface variable list.
    std::vector<Term> iface;
    if (!p->Accept(TokenKind::kRParen)) {
      for (;;) {
        PDMS_ASSIGN_OR_RETURN(Term t, p->ParseTerm());
        iface.push_back(std::move(t));
        if (p->Accept(TokenKind::kRParen)) break;
        PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kComma, "',' or ')'"));
      }
    }
    PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kColon, "':'"));
    std::vector<Atom> lhs_body;
    std::vector<Comparison> lhs_cmps;
    PDMS_RETURN_IF_ERROR(p->ParseBody(&lhs_body, &lhs_cmps));
    PeerMappingKind kind;
    if (p->Accept(TokenKind::kEq)) {
      kind = PeerMappingKind::kEquality;
    } else if (p->Accept(TokenKind::kLe)) {
      kind = PeerMappingKind::kInclusion;
    } else {
      return p->Error("expected '=' or '<=' between mapping sides");
    }
    std::vector<Atom> rhs_body;
    std::vector<Comparison> rhs_cmps;
    PDMS_RETURN_IF_ERROR(p->ParseBody(&rhs_body, &rhs_cmps));
    PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kDot, "'.'"));

    Atom head(InterfacePredicate(network->peer_mappings().size()), iface);
    PeerMapping m;
    m.kind = kind;
    m.lhs = ConjunctiveQuery(head, std::move(lhs_body), std::move(lhs_cmps));
    m.rhs = ConjunctiveQuery(head, std::move(rhs_body), std::move(rhs_cmps));
    return network->AddPeerMapping(std::move(m));
  }
  // Definitional mapping: a datalog rule.
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery rule, p->ParseRule());
  PeerMapping m;
  m.kind = PeerMappingKind::kDefinitional;
  m.rule = std::move(rule);
  return network->AddPeerMapping(std::move(m));
}

Status ParseFact(Parser* p, const PdmsNetwork& network, Database* data) {
  PDMS_ASSIGN_OR_RETURN(Atom atom, p->ParseAtom());
  PDMS_RETURN_IF_ERROR(p->Expect(TokenKind::kDot, "'.'"));
  if (!network.IsStoredRelation(atom.predicate())) {
    return Status::InvalidArgument(
        "facts may only populate stored relations; '" + atom.predicate() +
        "' is not one (declare its storage description first)");
  }
  Tuple tuple;
  tuple.reserve(atom.arity());
  for (const Term& t : atom.args()) {
    if (!t.is_constant()) {
      return Status::InvalidArgument("facts must be ground: " +
                                     atom.ToString());
    }
    tuple.push_back(t.value());
  }
  PDMS_ASSIGN_OR_RETURN(size_t arity,
                        network.RelationArity(atom.predicate()));
  if (arity != tuple.size()) {
    return Status::InvalidArgument(
        StrFormat("fact arity %zu does not match %s/%zu", tuple.size(),
                  atom.predicate().c_str(), arity));
  }
  data->Insert(atom.predicate(), std::move(tuple));
  return Status::Ok();
}

}  // namespace

Status ParsePplProgramInto(std::string_view text, PdmsNetwork* network,
                           Database* data) {
  PDMS_ASSIGN_OR_RETURN(Parser parser, Parser::Create(text));
  while (!parser.AtEnd()) {
    if (parser.Peek().kind != TokenKind::kIdent) {
      return parser.Error("expected a statement keyword (peer, stored, "
                          "mapping, fact)");
    }
    std::string keyword = parser.Next().text;
    if (keyword == "peer") {
      PDMS_RETURN_IF_ERROR(ParsePeer(&parser, network));
    } else if (keyword == "stored") {
      PDMS_RETURN_IF_ERROR(ParseStored(&parser, network));
    } else if (keyword == "mapping") {
      PDMS_RETURN_IF_ERROR(ParseMapping(&parser, network));
    } else if (keyword == "fact") {
      PDMS_RETURN_IF_ERROR(ParseFact(&parser, *network, data));
    } else {
      return parser.Error("unknown statement keyword '" + keyword + "'");
    }
  }
  return Status::Ok();
}

Result<PplProgram> ParsePplProgram(std::string_view text) {
  PplProgram program;
  PDMS_RETURN_IF_ERROR(
      ParsePplProgramInto(text, &program.network, &program.data));
  return program;
}

}  // namespace pdms
