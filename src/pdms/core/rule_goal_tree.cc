#include "pdms/core/rule_goal_tree.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "pdms/core/cost_estimator.h"
#include "pdms/exec/thread_pool.h"
#include "pdms/lang/canonical.h"
#include "pdms/minicon/mcd.h"
#include "pdms/util/strings.h"

namespace pdms {

std::string ReformulationStats::ToString() const {
  std::string out;
  out += StrFormat(
      "nodes: %zu (goal %zu, rule %zu = %zu definitional + %zu inclusion)\n",
      total_nodes(), goal_nodes, rule_nodes, definitional_nodes,
      inclusion_nodes);
  out += StrFormat(
      "pruned: %zu unsat, %zu dead-end, %zu guard; combos failed: %zu\n",
      pruned_unsat, pruned_dead, pruned_guard, combos_failed);
  if (pruned_unavailable > 0 || !excluded_stored.empty()) {
    out += StrFormat("unavailable: %zu goal(s) pruned; excluded: %s\n",
                     pruned_unavailable,
                     StrJoin(excluded_stored, ", ").c_str());
  }
  if (duplicate_disjuncts > 0) {
    out += StrFormat("duplicate disjuncts dropped: %zu\n",
                     duplicate_disjuncts);
  }
  if (goal_memo_hits > 0) {
    out += StrFormat("goal memo: %zu hit(s), %zu node(s) rehydrated\n",
                     goal_memo_hits, goal_memo_nodes);
  }
  out += StrFormat("rewritings: %zu%s%s\n", rewritings,
                   tree_truncated ? " (tree truncated)" : "",
                   enumeration_truncated ? " (enumeration truncated)" : "");
  out += StrFormat("build: %.3f ms, enumerate: %.3f ms\n", build_ms,
                   enumerate_ms);
  if (!time_to_rewriting_ms.empty()) {
    out += StrFormat("first rewriting at %.3f ms, last at %.3f ms\n",
                     time_to_rewriting_ms.front(),
                     time_to_rewriting_ms.back());
  }
  return out;
}

namespace {

void DumpGoal(const GoalNode& goal, int indent, std::string* out);

void DumpExpansion(const ExpansionNode& exp, int indent, std::string* out) {
  out->append(indent, ' ');
  *out += (exp.kind == ExpansionNode::Kind::kDefinitional) ? "rule[d"
                                                           : "mcd[d";
  *out += std::to_string(exp.description_id);
  *out += "]";
  if (!exp.unc.empty()) {
    *out += " unc={";
    for (size_t i = 0; i < exp.unc.size(); ++i) {
      if (i > 0) *out += ",";
      *out += std::to_string(exp.unc[i]);
    }
    *out += "}";
  }
  if (!exp.viable) *out += " (dead)";
  *out += "\n";
  for (const auto& child : exp.children) {
    DumpGoal(*child, indent + 2, out);
  }
}

void DumpGoal(const GoalNode& goal, int indent, std::string* out) {
  out->append(indent, ' ');
  *out += goal.label.ToString();
  if (goal.is_stored) *out += " [stored]";
  if (!goal.constraints.empty()) {
    *out += "  { ";
    *out += goal.constraints.ToString();
    *out += " }";
  }
  if (!goal.viable && !goal.is_stored) *out += " (dead)";
  *out += "\n";
  for (const auto& exp : goal.expansions) {
    DumpExpansion(*exp, indent + 2, out);
  }
}

// Collects the variable names of an atom into a set.
std::unordered_set<std::string> AtomVars(const Atom& atom) {
  std::vector<std::string> vars;
  CollectVariables(atom, &vars);
  return std::unordered_set<std::string>(vars.begin(), vars.end());
}

// --- Goal-memo clone machinery ---
//
// A stored subtree is rehydrated by a simultaneous variable rename: the
// template goal's label/interface variables map positionally onto the new
// goal's, and every other variable maps to a variable fresh in the current
// build. The rename is injective, so substitution chains and repetition
// patterns survive exactly.

using VarRename = std::unordered_map<std::string, std::string>;

Term RenameTermVia(const Term& t, const VarRename& m) {
  if (!t.is_variable()) return t;
  auto it = m.find(t.var_name());
  return it == m.end() ? t : Term::Var(it->second);
}

Atom RenameAtomVia(const Atom& a, const VarRename& m) {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(RenameTermVia(t, m));
  return Atom(a.predicate(), std::move(args));
}

ConstraintSet RenameConstraintsVia(const ConstraintSet& set,
                                   const VarRename& m) {
  ConstraintSet out;
  for (const Comparison& c : set.comparisons()) {
    out.Add(Comparison{RenameTermVia(c.lhs, m), c.op,
                       RenameTermVia(c.rhs, m)});
  }
  return out;
}

std::unique_ptr<GoalNode> CloneGoalVia(const GoalNode& g, const VarRename& m);

std::unique_ptr<ExpansionNode> CloneExpansionVia(const ExpansionNode& e,
                                                 const VarRename& m) {
  auto out = std::make_unique<ExpansionNode>();
  out->kind = e.kind;
  out->description_id = e.description_id;
  out->unifier = e.unifier.RenameVariables(m);
  out->required_constraints = RenameConstraintsVia(e.required_constraints, m);
  out->granted_constraints = RenameConstraintsVia(e.granted_constraints, m);
  out->label = RenameConstraintsVia(e.label, m);
  out->unc = e.unc;
  out->viable = e.viable;
  out->children.reserve(e.children.size());
  for (const auto& child : e.children) {
    out->children.push_back(CloneGoalVia(*child, m));
  }
  return out;
}

std::unique_ptr<GoalNode> CloneGoalVia(const GoalNode& g, const VarRename& m) {
  auto out = std::make_unique<GoalNode>();
  out->label = RenameAtomVia(g.label, m);
  out->constraints = RenameConstraintsVia(g.constraints, m);
  out->is_stored = g.is_stored;
  out->viable = g.viable;
  out->index_in_scope = g.index_in_scope;
  out->expansions.reserve(g.expansions.size());
  for (const auto& exp : g.expansions) {
    out->expansions.push_back(CloneExpansionVia(*exp, m));
  }
  return out;
}

void CollectConstraintVars(const ConstraintSet& set,
                           std::vector<std::string>* out) {
  for (const Comparison& c : set.comparisons()) CollectVariables(c, out);
}

void CollectGoalVars(const GoalNode& g, std::vector<std::string>* out);

void CollectExpansionVars(const ExpansionNode& e,
                          std::vector<std::string>* out) {
  for (const auto& [var, target] : e.unifier.bindings()) {
    out->push_back(var);
    if (target.is_variable()) out->push_back(target.var_name());
  }
  CollectConstraintVars(e.required_constraints, out);
  CollectConstraintVars(e.granted_constraints, out);
  CollectConstraintVars(e.label, out);
  for (const auto& child : e.children) CollectGoalVars(*child, out);
}

void CollectGoalVars(const GoalNode& g, std::vector<std::string>* out) {
  CollectVariables(g.label, out);
  CollectConstraintVars(g.constraints, out);
  for (const auto& exp : g.expansions) CollectExpansionVars(*exp, out);
}

// Folds a parallel child task's counters into its parent's. Only the
// build-phase counters can be nonzero in a child; enumeration-phase fields
// (combos_failed, rewritings, timings) and the root-filled excluded_stored
// stay with the root stats.
void MergeStatsCounters(ReformulationStats* into,
                        const ReformulationStats& from) {
  into->goal_nodes += from.goal_nodes;
  into->rule_nodes += from.rule_nodes;
  into->inclusion_nodes += from.inclusion_nodes;
  into->definitional_nodes += from.definitional_nodes;
  into->pruned_unsat += from.pruned_unsat;
  into->pruned_dead += from.pruned_dead;
  into->pruned_guard += from.pruned_guard;
  into->pruned_unavailable += from.pruned_unavailable;
  into->goal_memo_hits += from.goal_memo_hits;
  into->goal_memo_nodes += from.goal_memo_nodes;
}

// Node counts and a rough heap footprint for the memo's byte budget.
void CountSubtree(const ExpansionNode& e, GoalSubtree* t) {
  ++t->rule_nodes;
  if (e.kind == ExpansionNode::Kind::kDefinitional) {
    ++t->definitional_nodes;
  } else {
    ++t->inclusion_nodes;
  }
  t->byte_estimate += sizeof(ExpansionNode) +
                      48 * e.unifier.bindings().size() +
                      48 * e.required_constraints.comparisons().size() +
                      48 * e.granted_constraints.comparisons().size() +
                      48 * e.label.comparisons().size();
  for (const auto& child : e.children) {
    ++t->goal_nodes;
    t->byte_estimate += sizeof(GoalNode) + 32 * child->label.arity() +
                        48 * child->constraints.comparisons().size();
    for (const auto& exp : child->expansions) CountSubtree(*exp, t);
  }
}

}  // namespace

std::string OptionsFingerprint(const ReformulationOptions& options) {
  std::string out;
  out += options.prune_unsatisfiable ? "u1" : "u0";
  out += options.prune_dead_ends ? "d1" : "d0";
  out += options.order_expansions ? "o1" : "o0";
  // Appended only when set so every pre-existing fingerprint (and the
  // cache entries keyed by it) is unchanged for cost-blind queries.
  if (options.cost_aware) out += "|c1";
  out += "|a:";
  for (const std::string& s : options.allowed_stored) {
    out += s;
    out += ',';
  }
  // unavailable_stored is intentionally absent: availability is handled by
  // dependency-tracked invalidation, not by scoping (see the header note).
  return out;
}

std::string RuleGoalTree::ToString() const {
  std::string out = "query: " + query.ToString() + "\n";
  if (root != nullptr) DumpExpansion(*root, 0, &out);
  return out;
}

TreeBuilder::TreeBuilder(const ExpansionRules& rules,
                         ReformulationOptions options)
    : rules_(rules), options_(options) {
  ComputeReachability();
}

void TreeBuilder::ComputeReachability() {
  FillReachability(/*ignore_unavailable=*/false, &reach_depth_);
  if (options_.unavailable_stored.empty()) {
    reach_structural_ = reach_depth_;
  } else {
    // A second map that pretends every source is up. A predicate reachable
    // here but not in reach_depth_ is dead *because of* unavailability, so
    // its pruning is reported as degradation rather than a structural
    // dead end.
    FillReachability(/*ignore_unavailable=*/true, &reach_structural_);
  }
}

void TreeBuilder::FillReachability(bool ignore_unavailable,
                                   std::map<std::string, size_t>* out) {
  // Fixpoint: a predicate is answerable at depth d if it is stored (d = 0),
  // the head of a rule whose body is answerable, or occurs in the body of a
  // view whose head predicate is answerable. This ignores bindings and the
  // reuse guard, so it over-approximates — exactly what sound dead-end
  // pruning needs.
  std::map<std::string, size_t>& reach = *out;
  reach.clear();
  for (const std::string& s : rules_.stored) {
    bool usable = ignore_unavailable
                      ? (options_.allowed_stored.empty() ||
                         options_.allowed_stored.count(s) > 0)
                      : IsUsableStored(s);
    if (usable) reach[s] = 0;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ExpansionRules::DefRule& r : rules_.rules) {
      size_t depth = 0;
      bool ok = true;
      for (const Atom& b : r.rule.body()) {
        auto it = reach.find(b.predicate());
        if (it == reach.end()) {
          ok = false;
          break;
        }
        depth = std::max(depth, it->second);
      }
      if (!ok) continue;
      const std::string& head = r.rule.head().predicate();
      auto it = reach.find(head);
      if (it == reach.end() || it->second > depth + 1) {
        reach[head] = depth + 1;
        changed = true;
      }
    }
    for (const ExpansionRules::View& v : rules_.views) {
      auto hit = reach.find(v.view.head().predicate());
      if (hit == reach.end()) continue;
      size_t depth = hit->second + 1;
      for (const Atom& b : v.view.body()) {
        auto it = reach.find(b.predicate());
        if (it == reach.end() || it->second > depth) {
          reach[b.predicate()] = depth;
          changed = true;
        }
      }
    }
  }
}

bool TreeBuilder::Answerable(const std::string& predicate) const {
  return reach_depth_.count(predicate) > 0;
}

bool TreeBuilder::DeadOnlyByAvailability(const std::string& predicate) const {
  return reach_depth_.count(predicate) == 0 &&
         reach_structural_.count(predicate) > 0;
}

bool TreeBuilder::IsUsableStored(const std::string& predicate) const {
  if (rules_.stored.count(predicate) == 0) return false;
  if (options_.unavailable_stored.count(predicate) > 0) return false;
  return options_.allowed_stored.empty() ||
         options_.allowed_stored.count(predicate) > 0;
}

size_t TreeBuilder::DepthRank(const std::string& predicate) const {
  auto it = reach_depth_.find(predicate);
  return it == reach_depth_.end() ? SIZE_MAX : it->second;
}

Result<RuleGoalTree> TreeBuilder::Build(const ConjunctiveQuery& query) {
  PDMS_RETURN_IF_ERROR(query.CheckSafe());
  if (query.body().size() > 32) {
    return Status::Unsupported(
        "queries with more than 32 subgoals are not supported");
  }
  RuleGoalTree tree;
  tree.query = query;
  tree.root = std::make_unique<ExpansionNode>();
  tree.root->kind = ExpansionNode::Kind::kDefinitional;
  tree.root->description_id = SIZE_MAX;
  tree.root->required_constraints = ConstraintSet(query.comparisons());
  tree.root->label = tree.root->required_constraints;

  node_count_.store(1, std::memory_order_relaxed);
  truncated_.store(false, std::memory_order_relaxed);
  ReformulationStats& stats = tree.stats;
  stats.rule_nodes = 1;
  stats.definitional_nodes = 1;
  for (const std::string& name : options_.unavailable_stored) {
    // Report only relations this network actually stores and the caller's
    // source restriction would otherwise admit.
    if (rules_.stored.count(name) > 0 &&
        (options_.allowed_stored.empty() ||
         options_.allowed_stored.count(name) > 0)) {
      stats.excluded_stored.push_back(name);
    }
  }

  for (size_t i = 0; i < query.body().size(); ++i) {
    auto goal = std::make_unique<GoalNode>();
    goal->label = query.body()[i];
    goal->is_stored = IsUsableStored(goal->label.predicate());
    goal->index_in_scope = i;
    goal->constraints = tree.root->label.Project(AtomVars(goal->label));
    tree.root->children.push_back(std::move(goal));
    node_count_.fetch_add(1, std::memory_order_relaxed);
    ++stats.goal_nodes;
  }

  std::set<size_t> path;
  TaskState root{&fresh_, &path, &stats, &stats.deps, options_.trace, "_t"};
  BuildScope({tree.root.get(), query.head()}, &root);
  stats.tree_truncated = truncated_.load(std::memory_order_relaxed);

  MarkViability(tree.root.get());
  return tree;
}

bool TreeBuilder::Parallel() const { return options_.executor != nullptr; }

void TreeBuilder::BuildScope(const ScopeContext& ctx, TaskState* ts) {
  if (!Parallel()) {
    for (auto& child : ctx.scope->children) {
      ExpandGoal(ctx, child.get(), ts);
    }
  } else {
    // One task per sibling goal — the goals of one scope share no mutable
    // state, so each gets a full TaskState (path-prefixed factory, path
    // copy, private stats and trace) and runs wherever the pool schedules
    // it. Everything is merged back in child-index order, so the resulting
    // tree, stats, and span sequence do not depend on the schedule. The
    // sub-state is created even when a task ends up running inline on this
    // thread, which is what makes the output identical across thread
    // counts.
    struct SubTask {
      VariableFactory fresh;
      std::set<size_t> path;
      ReformulationStats stats;
      std::optional<obs::TraceContext> trace;
      TaskState ts;
    };
    const size_t n = ctx.scope->children.size();
    std::vector<std::unique_ptr<SubTask>> subs;
    subs.reserve(n);
    obs::SpanId graft =
        ts->trace != nullptr ? ts->trace->current() : obs::kNoSpan;
    exec::TaskGroup group(options_.executor);
    for (size_t i = 0; i < n; ++i) {
      auto sub = std::make_unique<SubTask>();
      // "g" marks a goal-level fork; suffixes always start with a letter,
      // so no two distinct task prefixes can generate the same name.
      std::string prefix = ts->prefix + "g" + std::to_string(i) + "_";
      sub->fresh = VariableFactory(prefix);
      sub->path = *ts->path;
      if (ts->trace != nullptr) sub->trace.emplace(ts->trace->Fork());
      sub->ts = TaskState{&sub->fresh, &sub->path, &sub->stats,
                          &sub->stats.deps,
                          sub->trace ? &*sub->trace : nullptr,
                          std::move(prefix)};
      subs.push_back(std::move(sub));
      SubTask* raw = subs.back().get();
      GoalNode* child = ctx.scope->children[i].get();
      group.Run([this, &ctx, child, raw] {
        ExpandGoal(ctx, child, &raw->ts);
      });
    }
    group.Wait();
    for (size_t i = 0; i < n; ++i) {
      MergeStatsCounters(ts->stats, subs[i]->stats);
      // Footprints merge through ts->deps, not ts->stats->deps: the two
      // differ while a memoable ancestor is capturing its subtree.
      ts->deps->MergeFrom(subs[i]->stats.deps);
      if (ts->trace != nullptr && subs[i]->trace.has_value()) {
        ts->trace->MergeChild(graft, std::move(*subs[i]->trace));
      }
    }
  }
  if (options_.order_expansions) {
    // Priority scheme: explore expansions that reach stored relations in
    // fewer levels first, so the depth-first enumeration emits its first
    // rewritings quickly. With a cost estimator attached (cost_aware),
    // equally-shallow expansions are additionally ordered by the estimated
    // network round trip of their most expensive stored leaf, so the first
    // rewritings lean on cheap (near, fast, healthy) sources. A stable
    // sort on a (depth, cost) key: cost never overrides depth, and
    // cost-blind ordering is untouched.
    const CostEstimator* est =
        options_.cost_aware ? options_.cost_estimator : nullptr;
    for (auto& child : ctx.scope->children) {
      std::stable_sort(
          child->expansions.begin(), child->expansions.end(),
          [&](const std::unique_ptr<ExpansionNode>& a,
              const std::unique_ptr<ExpansionNode>& b) {
            auto rank = [&](const ExpansionNode& e) {
              size_t worst = 0;
              double cost = 0;
              for (const auto& g : e.children) {
                size_t r = g->is_stored ? 0 : DepthRank(g->label.predicate());
                worst = std::max(worst, r);
                if (est != nullptr && g->is_stored) {
                  cost = std::max(cost,
                                  est->ScanCostMs(g->label.predicate()));
                }
              }
              return std::make_pair(worst, cost);
            };
            return rank(*a) < rank(*b);
          });
    }
  }
}

void TreeBuilder::ExpandGoal(const ScopeContext& ctx, GoalNode* goal,
                             TaskState* ts) {
  const std::string& pred = goal->label.predicate();
  // Every goal predicate the build touches — stored leaves included — is
  // part of the footprint: an availability flip or mapping change naming
  // it must invalidate whatever was built here.
  ts->deps->predicates.insert(pred);
  if (goal->is_stored) return;
  // One span per goal-node expansion; the per-candidate spans below nest
  // under it, so the explain tree mirrors the rule-goal tree. Prune-reason
  // attributes name the Section 4.3 optimization that fired.
  obs::ScopedSpan goal_span(ts->trace, "expand");
  goal_span.Set("goal", pred);
  if (rules_.stored.count(pred) > 0 &&
      options_.unavailable_stored.count(pred) > 0) {
    // A goal over an unavailable stored relation: not expandable (stored
    // relations have no rules) and not scannable. Count separately from
    // structural dead ends so the degradation report can attribute the
    // loss to peer unavailability.
    ++ts->stats->pruned_unavailable;
    goal_span.Set("pruned", "unavailable");
    return;
  }
  if (options_.prune_dead_ends && !Answerable(pred)) {
    if (DeadOnlyByAvailability(pred)) {
      ++ts->stats->pruned_unavailable;
      goal_span.Set("pruned", "unavailable");
    } else {
      ++ts->stats->pruned_dead;
      goal_span.Set("pruned", "dead_end");
    }
    return;
  }

  // Cross-query goal memo: single-child scopes only (MCDs in wider scopes
  // may cover siblings, which a stored subtree cannot represent
  // positionally). A hit replays the previously-built expansions under a
  // fresh renaming; a completed miss is stored for later queries in the
  // same (revision, epoch, options) scope.
  const bool memoable =
      options_.goal_memo != nullptr && ctx.scope->children.size() == 1;
  std::string memo_key;
  if (memoable) {
    memo_key = GoalMemoKey(*goal, ctx, *ts->path);
    if (std::shared_ptr<const GoalSubtree> t =
            options_.goal_memo->Find(memo_key)) {
      if (RehydrateGoalSubtree(*t, ctx, goal, ts)) {
        goal_span.Set("memo", "hit");
        return;
      }
    }
  }

  // While a memoable goal expands, capture its footprint in a local set so
  // it can be stored with the memo entry; merged into the parent recorder
  // on every exit (including budget aborts, whose consultations still
  // belong in the parent's footprint).
  DepSet memo_deps;
  struct DepCapture {
    TaskState* ts;
    DepSet* parent;
    ~DepCapture() {
      parent->MergeFrom(*ts->deps);
      ts->deps = parent;
    }
  };
  std::optional<DepCapture> capture;
  if (memoable) {
    memo_deps.predicates.insert(pred);
    capture.emplace(DepCapture{ts, ts->deps});
    ts->deps = &memo_deps;
  }

  auto rit = rules_.rules_by_head.find(pred);
  auto vit = rules_.views_by_body_pred.find(pred);
  const bool has_rules = rit != rules_.rules_by_head.end();
  const bool has_views = vit != rules_.views_by_body_pred.end();

  // Sibling labels: the local query against which MCDs are formed.
  std::vector<Atom> siblings;
  // The MCD's "distinguished" variables are the scope interface: what
  // the enclosing scope needs upward. Variables that occur only in
  // constraint labels may fold into view existentials — the assembly
  // step then either discharges the constraint against the view's
  // guarantees or drops the combination (EmitPartial), so soundness is
  // preserved without forbidding the MCD here.
  Atom iface;
  if (has_views) {
    siblings.reserve(ctx.scope->children.size());
    for (const auto& sib : ctx.scope->children) {
      siblings.push_back(sib->label);
    }
    iface = Atom("$iface", ctx.interface.args());
  }

  if (!Parallel()) {
    // Serial: one depth-first sweep over the candidates, definitional
    // rules first — exactly the original single-threaded walk. A false
    // return means the node budget fired; the goal is abandoned mid-sweep
    // (and not memoized), like the original early return.
    if (has_rules) {
      for (size_t idx : rit->second) {
        if (!TryDefinitionalCandidate(ctx, goal, rules_.rules[idx], ts,
                                      &goal->expansions)) {
          return;
        }
      }
    }
    if (has_views) {
      for (size_t idx : vit->second) {
        if (!TryInclusionCandidate(ctx, goal, rules_.views[idx], siblings,
                                   iface, ts, &goal->expansions)) {
          return;
        }
      }
    }
  } else {
    // Parallel: each rule/view candidate becomes a task expanding into a
    // private expansion list with private state, joined and merged in
    // candidate order — so the expansion order (which fixes the rewriting
    // order downstream) matches the serial sweep.
    struct CandidateTask {
      bool definitional = false;
      size_t idx = 0;
      VariableFactory fresh;
      std::set<size_t> path;
      ReformulationStats stats;
      std::optional<obs::TraceContext> trace;
      TaskState ts;
      std::vector<std::unique_ptr<ExpansionNode>> out;
    };
    std::vector<std::unique_ptr<CandidateTask>> cands;
    const size_t n_def = has_rules ? rit->second.size() : 0;
    const size_t n_view = has_views ? vit->second.size() : 0;
    cands.reserve(n_def + n_view);
    exec::TaskGroup group(options_.executor);
    for (size_t k = 0; k < n_def + n_view; ++k) {
      auto cand = std::make_unique<CandidateTask>();
      cand->definitional = k < n_def;
      cand->idx = cand->definitional ? rit->second[k]
                                     : vit->second[k - n_def];
      // "c" marks a candidate-level fork (see the "g" note in BuildScope).
      std::string prefix = ts->prefix + "c" + std::to_string(k) + "_";
      cand->fresh = VariableFactory(prefix);
      cand->path = *ts->path;
      if (ts->trace != nullptr) cand->trace.emplace(ts->trace->Fork());
      cand->ts = TaskState{&cand->fresh, &cand->path, &cand->stats,
                           &cand->stats.deps,
                           cand->trace ? &*cand->trace : nullptr,
                           std::move(prefix)};
      cands.push_back(std::move(cand));
      CandidateTask* raw = cands.back().get();
      group.Run([this, &ctx, goal, &siblings, &iface, raw] {
        if (raw->definitional) {
          TryDefinitionalCandidate(ctx, goal, rules_.rules[raw->idx],
                                   &raw->ts, &raw->out);
        } else {
          TryInclusionCandidate(ctx, goal, rules_.views[raw->idx], siblings,
                                iface, &raw->ts, &raw->out);
        }
      });
    }
    group.Wait();
    for (const auto& cand : cands) {
      for (auto& exp : cand->out) {
        goal->expansions.push_back(std::move(exp));
      }
      MergeStatsCounters(ts->stats, cand->stats);
      ts->deps->MergeFrom(cand->stats.deps);
      if (ts->trace != nullptr && cand->trace.has_value()) {
        ts->trace->MergeChild(goal_span.id(), std::move(*cand->trace));
      }
    }
  }

  // Store only complete subtrees: every node-budget exit above returns
  // without reaching this point, and a build that truncated elsewhere is
  // not trusted either. (An untruncated subtree is budget-independent, so
  // it stays valid under any later max_tree_nodes.)
  if (memoable && !truncated_.load(std::memory_order_relaxed)) {
    StoreGoalSubtree(memo_key, ctx, *goal, memo_deps);
  }
}

bool TreeBuilder::TryDefinitionalCandidate(
    const ScopeContext& ctx, GoalNode* goal,
    const ExpansionRules::DefRule& dr, TaskState* ts,
    std::vector<std::unique_ptr<ExpansionNode>>* out) {
  obs::ScopedSpan rule_span(ts->trace, "definitional");
  rule_span.Set("desc", static_cast<uint64_t>(dr.description_id));
  // Consulted — whatever happens next — so it is part of the footprint.
  ts->deps->descriptions.insert(dr.description_id);
  if (!dr.guard_exempt && ts->path->count(dr.description_id) > 0) {
    ++ts->stats->pruned_guard;
    rule_span.Set("pruned", "reuse_guard");
    return true;
  }
  if (node_count_.load(std::memory_order_relaxed) >=
      options_.max_tree_nodes) {
    truncated_.store(true, std::memory_order_relaxed);
    rule_span.Set("pruned", "node_budget");
    return false;
  }
  Rule renamed = RenameApart(dr.rule, ts->fresh);
  Substitution theta;
  if (!theta.UnifyAtoms(goal->label, renamed.head())) {
    rule_span.Set("pruned", "unification");
    return true;
  }
  // Body predicates shape the dead-end decision below even when the
  // candidate is pruned, so they enter the footprint here rather than via
  // the child-goal recursion.
  for (const Atom& b : renamed.body()) {
    ts->deps->predicates.insert(b.predicate());
  }

  auto exp = std::make_unique<ExpansionNode>();
  exp->kind = ExpansionNode::Kind::kDefinitional;
  exp->description_id = dr.description_id;
  exp->unifier = theta;
  for (const Comparison& c : renamed.comparisons()) {
    exp->required_constraints.Add(theta.Apply(c));
  }
  exp->label = goal->constraints.Apply(theta);
  exp->label.AddAll(exp->required_constraints);
  if (options_.prune_unsatisfiable && !exp->label.IsSatisfiable()) {
    ++ts->stats->pruned_unsat;
    rule_span.Set("pruned", "unsatisfiable");
    return true;
  }
  if (options_.prune_dead_ends) {
    bool dead = false;
    bool only_availability = true;
    for (const Atom& b : renamed.body()) {
      if (!Answerable(b.predicate())) {
        dead = true;
        if (!DeadOnlyByAvailability(b.predicate())) {
          only_availability = false;
          break;
        }
      }
    }
    if (dead) {
      if (only_availability) {
        ++ts->stats->pruned_unavailable;
        rule_span.Set("pruned", "unavailable");
      } else {
        ++ts->stats->pruned_dead;
        rule_span.Set("pruned", "dead_end");
      }
      return true;
    }
  }
  rule_span.Set("subgoals", static_cast<uint64_t>(renamed.body().size()));
  for (size_t j = 0; j < renamed.body().size(); ++j) {
    auto child = std::make_unique<GoalNode>();
    child->label = theta.Apply(renamed.body()[j]);
    child->is_stored = IsUsableStored(child->label.predicate());
    child->index_in_scope = j;
    child->constraints = exp->label.Project(AtomVars(child->label));
    exp->children.push_back(std::move(child));
    node_count_.fetch_add(1, std::memory_order_relaxed);
    ++ts->stats->goal_nodes;
  }
  node_count_.fetch_add(1, std::memory_order_relaxed);
  ++ts->stats->rule_nodes;
  ++ts->stats->definitional_nodes;

  bool inserted = ts->path->insert(dr.description_id).second;
  BuildScope({exp.get(), theta.Apply(goal->label)}, ts);
  if (inserted) ts->path->erase(dr.description_id);
  out->push_back(std::move(exp));
  return true;
}

bool TreeBuilder::TryInclusionCandidate(
    const ScopeContext& ctx, GoalNode* goal, const ExpansionRules::View& vw,
    const std::vector<Atom>& siblings, const Atom& iface, TaskState* ts,
    std::vector<std::unique_ptr<ExpansionNode>>* out) {
  obs::ScopedSpan view_span(ts->trace, "inclusion");
  view_span.Set("desc", static_cast<uint64_t>(vw.description_id));
  ts->deps->descriptions.insert(vw.description_id);
  // The view head (a stored relation or `_V` predicate) gates this
  // candidate's reachability check, so it belongs in the footprint even if
  // the candidate is pruned before producing a child goal.
  ts->deps->predicates.insert(vw.view.head().predicate());
  if (ts->path->count(vw.description_id) > 0) {
    ++ts->stats->pruned_guard;
    view_span.Set("pruned", "reuse_guard");
    return true;
  }
  if (options_.prune_dead_ends && !Answerable(vw.view.head().predicate())) {
    if (DeadOnlyByAvailability(vw.view.head().predicate())) {
      ++ts->stats->pruned_unavailable;
      view_span.Set("pruned", "unavailable");
    } else {
      ++ts->stats->pruned_dead;
      view_span.Set("pruned", "dead_end");
    }
    return true;
  }
  if (node_count_.load(std::memory_order_relaxed) >=
      options_.max_tree_nodes) {
    truncated_.store(true, std::memory_order_relaxed);
    view_span.Set("pruned", "node_budget");
    return false;
  }
  std::vector<Mcd> mcds = MakeMcds(
      iface, siblings, goal->index_in_scope, vw.view, ts->fresh,
      options_.prune_unsatisfiable ? &ctx.scope->label : nullptr);
  view_span.Set("mcds", static_cast<uint64_t>(mcds.size()));
  for (Mcd& mcd : mcds) {
    obs::ScopedSpan mcd_span(ts->trace, "mcd");
    if (node_count_.load(std::memory_order_relaxed) >=
        options_.max_tree_nodes) {
      truncated_.store(true, std::memory_order_relaxed);
      mcd_span.Set("pruned", "node_budget");
      return false;
    }
    auto exp = std::make_unique<ExpansionNode>();
    exp->kind = ExpansionNode::Kind::kInclusion;
    exp->description_id = vw.description_id;
    exp->unifier = mcd.unifier;
    exp->granted_constraints = mcd.view_constraints;
    exp->unc = mcd.covered;
    exp->label = ctx.scope->label.Apply(mcd.unifier);
    exp->label.AddAll(exp->granted_constraints);
    if (options_.prune_unsatisfiable && !exp->label.IsSatisfiable()) {
      ++ts->stats->pruned_unsat;
      mcd_span.Set("pruned", "unsatisfiable");
      continue;
    }
    if (ts->trace != nullptr) {
      mcd_span.Set("view", mcd.view_atom.predicate());
      std::string unc;
      for (size_t u : exp->unc) {
        if (!unc.empty()) unc += ',';
        unc += std::to_string(u);
      }
      mcd_span.Set("unc", unc);
    }
    auto child = std::make_unique<GoalNode>();
    child->label = mcd.view_atom;
    child->is_stored = IsUsableStored(child->label.predicate());
    child->index_in_scope = 0;
    child->constraints = exp->label.Project(AtomVars(child->label));
    Atom child_interface = child->label;
    exp->children.push_back(std::move(child));
    node_count_.fetch_add(2, std::memory_order_relaxed);
    ++ts->stats->goal_nodes;
    ++ts->stats->rule_nodes;
    ++ts->stats->inclusion_nodes;

    bool inserted = ts->path->insert(vw.description_id).second;
    BuildScope({exp.get(), child_interface}, ts);
    if (inserted) ts->path->erase(vw.description_id);
    out->push_back(std::move(exp));
  }
  return true;
}

std::string TreeBuilder::GoalMemoKey(const GoalNode& goal,
                                     const ScopeContext& ctx,
                                     const std::set<size_t>& path) const {
  // Canonical numbering: goal-label variables are #0, #1, ... in
  // first-appearance order (matching CanonicalAtomKey); variables foreign
  // to the goal label — interface distinguished variables and ancestor
  // variables surviving in the constraint label — are ~0, ~1, ... in
  // first-appearance order across the interface-then-label rendering.
  std::unordered_map<std::string, std::string> names;
  size_t numbered = 0;
  for (const Term& t : goal.label.args()) {
    if (t.is_variable() &&
        names.emplace(t.var_name(), "#" + std::to_string(numbered)).second) {
      ++numbered;
    }
  }
  size_t foreign = 0;
  auto render = [&](const Term& t) -> std::string {
    if (!t.is_variable()) return t.ToString();
    auto [it, inserted] =
        names.emplace(t.var_name(), "~" + std::to_string(foreign));
    if (inserted) ++foreign;
    return it->second;
  };
  std::string key = CanonicalAtomKey(goal.label);
  key += "|i:";
  for (const Term& t : ctx.interface.args()) {
    key += render(t);
    key += ',';
  }
  key += "|c:";
  for (const Comparison& c : ctx.scope->label.comparisons()) {
    key += render(c.lhs);
    key += CmpOpName(c.op);
    key += render(c.rhs);
    key += ';';
  }
  key += "|p:";
  for (size_t id : path) {
    key += std::to_string(id);
    key += ',';
  }
  return key;
}

bool TreeBuilder::RehydrateGoalSubtree(const GoalSubtree& subtree,
                                       const ScopeContext& ctx,
                                       GoalNode* goal, TaskState* ts) {
  size_t total = subtree.goal_nodes + subtree.rule_nodes;
  if (node_count_.load(std::memory_order_relaxed) + total >
      options_.max_tree_nodes) {
    // Rebuilding fresh truncates exactly where a memo-less build would.
    return false;
  }
  VarRename rename;
  // Positional maps; the memo key guarantees the patterns coincide
  // (variable positions, repetitions, and constants all match).
  for (size_t i = 0; i < subtree.label_args.size(); ++i) {
    const Term& from = subtree.label_args[i];
    const Term& to = goal->label.args()[i];
    if (from.is_variable()) rename[from.var_name()] = to.var_name();
  }
  for (size_t i = 0; i < subtree.iface_args.size(); ++i) {
    const Term& from = subtree.iface_args[i];
    const Term& to = ctx.interface.args()[i];
    if (from.is_variable()) rename[from.var_name()] = to.var_name();
  }
  // Every other subtree variable becomes fresh in this build, so clones
  // can never capture unrelated variables elsewhere in the tree.
  std::vector<std::string> vars;
  for (const auto& exp : subtree.expansions) CollectExpansionVars(*exp, &vars);
  for (const std::string& v : vars) {
    if (rename.find(v) == rename.end()) rename[v] = ts->fresh->FreshName();
  }
  goal->expansions.reserve(subtree.expansions.size());
  for (const auto& exp : subtree.expansions) {
    goal->expansions.push_back(CloneExpansionVia(*exp, rename));
  }
  node_count_.fetch_add(total, std::memory_order_relaxed);
  ts->stats->goal_nodes += subtree.goal_nodes;
  ts->stats->rule_nodes += subtree.rule_nodes;
  ts->stats->definitional_nodes += subtree.definitional_nodes;
  ts->stats->inclusion_nodes += subtree.inclusion_nodes;
  ++ts->stats->goal_memo_hits;
  ts->stats->goal_memo_nodes += total;
  // A rehydrated subtree depends on everything its template build
  // consulted — including candidates that were pruned and so left no
  // structural mark in the cloned expansions.
  ts->deps->MergeFrom(subtree.deps);
  return true;
}

void TreeBuilder::StoreGoalSubtree(const std::string& key,
                                   const ScopeContext& ctx,
                                   const GoalNode& goal, const DepSet& deps) {
  GoalSubtree t;
  t.label_args = goal.label.args();
  t.iface_args = ctx.interface.args();
  t.expansions.reserve(goal.expansions.size());
  for (const auto& exp : goal.expansions) {
    t.expansions.push_back(CloneExpansionVia(*exp, VarRename{}));
    CountSubtree(*exp, &t);
  }
  t.deps = deps;
  for (const std::string& p : deps.predicates) {
    t.byte_estimate += p.size() + 48;
  }
  t.byte_estimate += 8 * deps.descriptions.size();
  options_.goal_memo->Store(key, std::move(t));
}

void TreeBuilder::MarkViability(ExpansionNode* scope) {
  // Bottom-up structural pass. When dead-end pruning is disabled we mark
  // everything viable and let enumeration discover failures naturally.
  for (auto& child : scope->children) {
    child->viable = child->is_stored;
    for (auto& exp : child->expansions) {
      MarkViability(exp.get());
      if (exp->viable) child->viable = true;
    }
    if (!options_.prune_dead_ends) child->viable = true;
  }
  if (!options_.prune_dead_ends) {
    scope->viable = true;
    return;
  }
  // The scope is viable iff the available coverage sets (stored leaves,
  // viable definitional expansions covering themselves, viable inclusion
  // expansions covering their unc sets) can cover every child.
  uint64_t covered = 0;
  uint64_t universe = 0;
  for (size_t i = 0; i < scope->children.size(); ++i) {
    universe |= uint64_t{1} << i;
    const GoalNode& child = *scope->children[i];
    if (child.is_stored) {
      covered |= uint64_t{1} << i;
      continue;
    }
    for (const auto& exp : child.expansions) {
      if (!exp->viable) continue;
      if (exp->kind == ExpansionNode::Kind::kDefinitional) {
        covered |= uint64_t{1} << i;
      } else {
        for (size_t u : exp->unc) covered |= uint64_t{1} << u;
      }
    }
  }
  scope->viable = (covered & universe) == universe;
}

}  // namespace pdms
