#ifndef PDMS_CORE_REFORMULATOR_H_
#define PDMS_CORE_REFORMULATOR_H_

#include <functional>
#include <memory>

#include "pdms/core/enumerate.h"
#include "pdms/core/network.h"
#include "pdms/core/normalize.h"
#include "pdms/core/rule_goal_tree.h"
#include "pdms/qp/physical_plan.h"

namespace pdms {

/// The outcome of reformulating one query: a union of conjunctive queries
/// over stored relations, plus the build/enumeration statistics.
struct ReformulationResult {
  UnionQuery rewriting;
  ReformulationStats stats;
  /// Where the vectorized engine caches the physical plan compiled for
  /// this rewriting (docs/query_planning.md). Shared with the PlanCache
  /// entry when the rewriting came from (or was inserted into) the cache,
  /// so hot queries skip planning; null when no cache is attached, in
  /// which case the engine plans per query (join tables in its catalog
  /// still amortize across queries).
  std::shared_ptr<qp::PhysicalPlanSlot> physical_slot;
};

/// The query reformulation engine (Section 4). Construction normalizes the
/// network once (Step 1); each Reformulate call builds a rule-goal tree
/// (Step 2) and enumerates its solutions (Step 3).
///
/// Guarantees (Section 4's soundness/completeness statement): evaluating
/// the returned rewriting over the stored relations produces only certain
/// answers; when the network lies in a PTIME fragment of Section 3
/// (see PdmsNetwork::Classify) the rewriting produces *all* certain
/// answers, budget permitting.
class Reformulator {
 public:
  explicit Reformulator(const PdmsNetwork& network,
                        ReformulationOptions options = {});

  /// Full reformulation: returns every rewriting (subject to budgets).
  Result<ReformulationResult> Reformulate(const ConjunctiveQuery& query);

  /// Per-call options override (the instance options are untouched): used
  /// by the facade to fold the network's current availability state into
  /// one query without rebuilding the normalization.
  Result<ReformulationResult> Reformulate(const ConjunctiveQuery& query,
                                          const ReformulationOptions& options);

  /// Streaming variant: rewritings are delivered to `sink` as they are
  /// found (return false from the sink to stop early). Statistics,
  /// including per-rewriting timestamps measured from call entry, are
  /// returned in the result's stats; `rewriting` holds whatever the sink
  /// accepted.
  Result<ReformulationResult> ReformulateStreaming(
      const ConjunctiveQuery& query, const RewritingSink& sink);
  Result<ReformulationResult> ReformulateStreaming(
      const ConjunctiveQuery& query, const ReformulationOptions& options,
      const RewritingSink& sink);

  /// Step 2 only — used by benchmarks that measure tree size.
  Result<RuleGoalTree> BuildTree(const ConjunctiveQuery& query);

  const ExpansionRules& expansion_rules() const { return rules_; }
  const ReformulationOptions& options() const { return options_; }
  void set_options(const ReformulationOptions& options) {
    options_ = options;
  }

 private:
  ExpansionRules rules_;
  ReformulationOptions options_;
};

}  // namespace pdms

#endif  // PDMS_CORE_REFORMULATOR_H_
