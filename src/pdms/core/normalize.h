#ifndef PDMS_CORE_NORMALIZE_H_
#define PDMS_CORE_NORMALIZE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdms/core/network.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/util/status.h"

namespace pdms {

/// Step 1 of the reformulation algorithm (Section 4.2): the PDMS
/// specification is compiled into two uniform collections —
///
///  * inclusion *views* `V ⊆ Q2`, used LAV-style: a subgoal over a relation
///    of body(Q2) can be covered by an MCD producing the atom V;
///  * *definitional rules* `p :- body`, used GAV-style by unfolding.
///
/// Every equality description contributes both directions as inclusions;
/// every inclusion `Q1 ⊆ Q2` is split into `V ⊆ Q2` plus the paired rule
/// `V :- Q1` with a fresh predicate V (skipped when Q1 is already a bare
/// atom); storage descriptions become views whose head is the stored
/// relation itself. Equality storage descriptions are used in their sound
/// `⊆` direction only — the closed-world direction cannot add rewritings,
/// only certain answers beyond PTIME reach (Theorem 3.2.2).
struct ExpansionRules {
  struct View {
    ConjunctiveQuery view;  // head = V or stored atom; body = Q2
    /// Index of the originating description; a root-to-leaf path of the
    /// rule-goal tree never uses the same description twice (termination
    /// guard for cyclic PDMSs).
    size_t description_id = 0;
  };
  struct DefRule {
    Rule rule;
    size_t description_id = 0;
    /// True for the paired `V :- Q1` half of a split inclusion: it is the
    /// only way to expand V and always follows its own inclusion half on
    /// the path, so it is exempt from the reuse guard.
    bool guard_exempt = false;
  };

  std::vector<View> views;
  std::vector<DefRule> rules;

  /// predicate -> indices of views whose body mentions the predicate.
  std::unordered_map<std::string, std::vector<size_t>> views_by_body_pred;
  /// predicate -> indices of rules whose head is the predicate.
  std::unordered_map<std::string, std::vector<size_t>> rules_by_head;

  /// Stored relation names (goal nodes over these are leaves).
  std::set<std::string> stored;

  /// Total number of original descriptions (guard-set domain).
  size_t num_descriptions = 0;

  std::string ToString() const;
};

/// Compiles the network. Fresh V predicates are drawn as `_V<k>` and cannot
/// collide with parsed relation names.
ExpansionRules Normalize(const PdmsNetwork& network);

}  // namespace pdms

#endif  // PDMS_CORE_NORMALIZE_H_
