#include "pdms/core/network.h"

#include <algorithm>
#include <set>

#include "pdms/util/strings.h"

namespace pdms {

const char* CatalogChangeKindName(CatalogChange::Kind kind) {
  switch (kind) {
    case CatalogChange::Kind::kPeerAdded:
      return "peer-added";
    case CatalogChange::Kind::kStorageAdded:
      return "storage-added";
    case CatalogChange::Kind::kMappingAdded:
      return "mapping-added";
    case CatalogChange::Kind::kMappingRemoved:
      return "mapping-removed";
    case CatalogChange::Kind::kMappingEdited:
      return "mapping-edited";
    case CatalogChange::Kind::kAvailability:
      return "availability";
  }
  return "?";
}

namespace {

// The predicates whose expansion candidates a mapping contributes to.
// A definitional mapping is consulted when a goal names its head; an
// inclusion `Q1 ⊆ Q2` is consulted (LAV-style, via its normalized view)
// when a goal names a relation of body(Q2); an equality is an inclusion
// both ways.
std::set<std::string> MappingTouchedPreds(const PeerMapping& m) {
  std::set<std::string> preds;
  switch (m.kind) {
    case PeerMappingKind::kDefinitional:
      preds.insert(m.rule.head().predicate());
      break;
    case PeerMappingKind::kEquality:
      for (const Atom& a : m.lhs.body()) preds.insert(a.predicate());
      [[fallthrough]];
    case PeerMappingKind::kInclusion:
      for (const Atom& a : m.rhs.body()) preds.insert(a.predicate());
      break;
  }
  return preds;
}

}  // namespace

const char* QueryComplexityName(QueryComplexity c) {
  switch (c) {
    case QueryComplexity::kPolynomial:
      return "polynomial";
    case QueryComplexity::kCoNpComplete:
      return "co-NP-complete";
    case QueryComplexity::kUndecidable:
      return "undecidable";
  }
  return "?";
}

std::string Classification::Explain() const {
  std::string out;
  out += StrFormat("inclusion peer mappings acyclic: %s\n",
                   inclusions_acyclic ? "yes" : "no");
  out += StrFormat("peer equalities: %s%s\n",
                   has_peer_equalities ? "yes" : "no",
                   has_peer_equalities
                       ? (peer_equalities_projection_free
                              ? " (projection-free)"
                              : " (with projections)")
                       : "");
  out += StrFormat("equality storage descriptions: %s%s\n",
                   has_equality_storage ? "yes" : "no",
                   has_equality_storage
                       ? (storage_equalities_projection_free
                              ? " (projection-free)"
                              : " (with projections)")
                       : "");
  out += StrFormat("definitional heads isolated: %s\n",
                   definitional_heads_isolated ? "yes" : "no");
  out += StrFormat("definitional mappings recursive: %s\n",
                   definitional_recursive ? "yes" : "no");
  out += StrFormat("comparisons outside storage/definitional bodies: %s\n",
                   comparisons_outside_safe_positions ? "yes" : "no");
  out += StrFormat("=> query answering: %s", QueryComplexityName(complexity));
  out += StrFormat(" (with query comparisons: %s)\n",
                   QueryComplexityName(complexity_with_query_comparisons));
  return out;
}

Status PdmsNetwork::AddPeer(Peer peer) {
  for (const Peer& p : peers_) {
    if (p.name == peer.name) {
      return Status::InvalidArgument("duplicate peer name: " + peer.name);
    }
  }
  std::set<std::string> seen;
  for (const auto& [rel, arity] : peer.relations) {
    if (!seen.insert(rel).second) {
      return Status::InvalidArgument(
          StrFormat("peer %s declares relation %s twice", peer.name.c_str(),
                    rel.c_str()));
    }
    peer_relation_arity_[QualifiedName(peer.name, rel)] = arity;
  }
  peers_.push_back(std::move(peer));
  ++revision_;
  // Candidate sets are keyed off mappings and storage, so a bare peer
  // declaration invalidates nothing.
  LogChange(CatalogChange::Kind::kPeerAdded, {}, SIZE_MAX);
  return Status::Ok();
}

Status PdmsNetwork::AddPeer(
    const std::string& name,
    std::vector<std::pair<std::string, size_t>> relations) {
  Peer peer;
  peer.name = name;
  peer.relations = std::move(relations);
  return AddPeer(std::move(peer));
}

Status PdmsNetwork::ValidateBody(const ConjunctiveQuery& cq,
                                 const std::string& context) const {
  for (const Atom& a : cq.body()) {
    auto it = peer_relation_arity_.find(a.predicate());
    if (it == peer_relation_arity_.end()) {
      return Status::NotFound(StrFormat(
          "%s references undeclared peer relation %s", context.c_str(),
          a.predicate().c_str()));
    }
    if (it->second != a.arity()) {
      return Status::InvalidArgument(StrFormat(
          "%s uses %s with arity %zu (declared %zu)", context.c_str(),
          a.predicate().c_str(), a.arity(), it->second));
    }
  }
  return Status::Ok();
}

Status PdmsNetwork::AddStorageDescription(StorageDescription desc) {
  const Atom& head = desc.view.head();
  if (peer_relation_arity_.count(head.predicate()) > 0) {
    return Status::InvalidArgument(
        "stored relation name collides with a peer relation: " +
        head.predicate());
  }
  auto it = stored_relation_arity_.find(head.predicate());
  if (it != stored_relation_arity_.end() && it->second != head.arity()) {
    return Status::InvalidArgument(
        StrFormat("stored relation %s redeclared with arity %zu (was %zu)",
                  head.predicate().c_str(), head.arity(), it->second));
  }
  if (desc.name.empty()) {
    desc.name = StrFormat("storage#%zu", storage_.size());
  }
  if (desc.peer.empty() && !desc.view.body().empty()) {
    // The storing peer defaults to the owner of the first described
    // relation ("A:R" -> "A"); availability tracking keys off it.
    const std::string& qualified = desc.view.body()[0].predicate();
    desc.peer = qualified.substr(0, qualified.find(':'));
  }
  PDMS_RETURN_IF_ERROR(ValidateBody(desc.view, desc.name));
  PDMS_RETURN_IF_ERROR(desc.view.CheckSafe());
  stored_relation_arity_[head.predicate()] = head.arity();
  std::set<std::string> preds;
  preds.insert(head.predicate());
  for (const Atom& a : desc.view.body()) preds.insert(a.predicate());
  // Storage ids precede mapping ids, so inserting a storage description
  // renumbers every mapping: ids >= old storage count shift.
  const size_t shift_from = storage_.size();
  storage_.push_back(std::move(desc));
  ++revision_;
  LogChange(CatalogChange::Kind::kStorageAdded, std::move(preds), shift_from);
  return Status::Ok();
}

Status PdmsNetwork::ValidateMapping(const PeerMapping& mapping) const {
  if (mapping.kind == PeerMappingKind::kDefinitional) {
    const Atom& head = mapping.rule.head();
    auto it = peer_relation_arity_.find(head.predicate());
    if (it == peer_relation_arity_.end()) {
      return Status::NotFound(
          StrFormat("%s defines undeclared peer relation %s",
                    mapping.name.c_str(), head.predicate().c_str()));
    }
    if (it->second != head.arity()) {
      return Status::InvalidArgument(
          StrFormat("%s head arity %zu (declared %zu)",
                    mapping.name.c_str(), head.arity(), it->second));
    }
    PDMS_RETURN_IF_ERROR(ValidateBody(mapping.rule, mapping.name));
    PDMS_RETURN_IF_ERROR(mapping.rule.CheckSafe());
  } else {
    if (!(mapping.lhs.head() == mapping.rhs.head())) {
      return Status::InvalidArgument(
          mapping.name +
          ": inclusion/equality sides must share one interface head");
    }
    PDMS_RETURN_IF_ERROR(ValidateBody(mapping.lhs, mapping.name + " (lhs)"));
    PDMS_RETURN_IF_ERROR(ValidateBody(mapping.rhs, mapping.name + " (rhs)"));
    PDMS_RETURN_IF_ERROR(mapping.lhs.CheckSafe());
    PDMS_RETURN_IF_ERROR(mapping.rhs.CheckSafe());
  }
  return Status::Ok();
}

Status PdmsNetwork::AddPeerMapping(PeerMapping mapping) {
  if (mapping.name.empty()) {
    mapping.name = StrFormat("mapping#%zu", mappings_.size());
  }
  PDMS_RETURN_IF_ERROR(ValidateMapping(mapping));
  std::set<std::string> preds = MappingTouchedPreds(mapping);
  mappings_.push_back(std::move(mapping));
  ++revision_;
  // Appending keeps every existing description id stable.
  LogChange(CatalogChange::Kind::kMappingAdded, std::move(preds), SIZE_MAX);
  return Status::Ok();
}

Status PdmsNetwork::RemovePeerMapping(const std::string& name) {
  for (size_t i = 0; i < mappings_.size(); ++i) {
    if (mappings_[i].name != name) continue;
    std::set<std::string> preds = MappingTouchedPreds(mappings_[i]);
    // Mapping ids start after the storage ids; every mapping at or after
    // the removed slot is renumbered.
    const size_t shift_from = storage_.size() + i;
    mappings_.erase(mappings_.begin() + static_cast<std::ptrdiff_t>(i));
    ++revision_;
    LogChange(CatalogChange::Kind::kMappingRemoved, std::move(preds),
              shift_from);
    return Status::Ok();
  }
  return Status::NotFound("unknown peer mapping: " + name);
}

Status PdmsNetwork::ReplacePeerMapping(const std::string& name,
                                       PeerMapping next) {
  for (size_t i = 0; i < mappings_.size(); ++i) {
    if (mappings_[i].name != name) continue;
    if (next.name.empty()) next.name = name;
    PDMS_RETURN_IF_ERROR(ValidateMapping(next));
    std::set<std::string> preds = MappingTouchedPreds(mappings_[i]);
    for (const std::string& p : MappingTouchedPreds(next)) preds.insert(p);
    // Same slot, but normalization may draw different fresh `_V` names for
    // this and every later split inclusion, so ids from here on are stale.
    const size_t shift_from = storage_.size() + i;
    mappings_[i] = std::move(next);
    ++revision_;
    LogChange(CatalogChange::Kind::kMappingEdited, std::move(preds),
              shift_from);
    return Status::Ok();
  }
  return Status::NotFound("unknown peer mapping: " + name);
}

bool PdmsNetwork::IsPeerRelation(const std::string& qualified) const {
  return peer_relation_arity_.count(qualified) > 0;
}

bool PdmsNetwork::IsStoredRelation(const std::string& name) const {
  return stored_relation_arity_.count(name) > 0;
}

Result<size_t> PdmsNetwork::RelationArity(const std::string& name) const {
  auto it = peer_relation_arity_.find(name);
  if (it != peer_relation_arity_.end()) return it->second;
  it = stored_relation_arity_.find(name);
  if (it != stored_relation_arity_.end()) return it->second;
  return Status::NotFound("unknown relation: " + name);
}

std::vector<std::string> PdmsNetwork::StoredRelationNames() const {
  std::vector<std::string> out;
  out.reserve(stored_relation_arity_.size());
  for (const auto& [name, arity] : stored_relation_arity_) {
    out.push_back(name);
  }
  return out;
}

Result<std::string> PdmsNetwork::StoredRelationPeer(
    const std::string& name) const {
  if (!IsStoredRelation(name)) {
    return Status::NotFound("not a stored relation: " + name);
  }
  for (const StorageDescription& d : storage_) {
    if (d.stored_atom().predicate() == name) return d.peer;
  }
  return Status::Internal("stored relation without storage description: " +
                          name);
}

std::vector<std::string> PdmsNetwork::StoredRelationPeers(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const StorageDescription& d : storage_) {
    if (d.stored_atom().predicate() == name) out.push_back(d.peer);
  }
  return out;
}

Status PdmsNetwork::SetPeerAvailable(const std::string& peer,
                                     bool available) {
  bool declared = false;
  for (const Peer& p : peers_) declared = declared || p.name == peer;
  if (!declared) return Status::NotFound("unknown peer: " + peer);
  bool changed = available ? unavailable_peers_.erase(peer) > 0
                           : unavailable_peers_.insert(peer).second;
  if (changed) {
    ++availability_epoch_;
    LogChange(CatalogChange::Kind::kAvailability, StoredRelationsOf(peer),
              SIZE_MAX);
  }
  return Status::Ok();
}

Status PdmsNetwork::SetStoredRelationAvailable(const std::string& name,
                                               bool available) {
  if (!IsStoredRelation(name)) {
    return Status::NotFound("not a stored relation: " + name);
  }
  bool changed = available ? unavailable_stored_.erase(name) > 0
                           : unavailable_stored_.insert(name).second;
  if (changed) {
    ++availability_epoch_;
    LogChange(CatalogChange::Kind::kAvailability, {name}, SIZE_MAX);
  }
  return Status::Ok();
}

void PdmsNetwork::LogChange(CatalogChange::Kind kind,
                            std::set<std::string> predicates,
                            size_t id_shift_from) {
  CatalogChange change;
  change.kind = kind;
  change.seq = ++change_seq_;
  change.predicates = std::move(predicates);
  change.id_shift_from = id_shift_from;
  change_log_.push_back(std::move(change));
  while (change_log_.size() > kMaxChangeLog) change_log_.pop_front();
}

std::set<std::string> PdmsNetwork::StoredRelationsOf(
    const std::string& peer) const {
  std::set<std::string> out;
  for (const StorageDescription& d : storage_) {
    if (d.peer == peer) out.insert(d.stored_atom().predicate());
  }
  return out;
}

std::optional<std::vector<CatalogChange>> PdmsNetwork::ChangesSince(
    uint64_t from_seq) const {
  if (from_seq > change_seq_) return std::nullopt;  // consumer ahead of us
  if (from_seq == change_seq_) return std::vector<CatalogChange>{};
  // The log retains the last kMaxChangeLog changes; the oldest retained
  // seq is change_seq_ - size + 1, so the delta is complete only if
  // from_seq + 1 >= that.
  if (change_log_.empty() ||
      change_log_.front().seq > from_seq + 1) {
    return std::nullopt;
  }
  std::vector<CatalogChange> out;
  for (const CatalogChange& c : change_log_) {
    if (c.seq > from_seq) out.push_back(c);
  }
  return out;
}

bool PdmsNetwork::IsPeerAvailable(const std::string& peer) const {
  return unavailable_peers_.count(peer) == 0;
}

bool PdmsNetwork::IsStoredRelationAvailable(const std::string& name) const {
  if (unavailable_stored_.count(name) > 0) return false;
  for (const StorageDescription& d : storage_) {
    if (d.stored_atom().predicate() == name &&
        unavailable_peers_.count(d.peer) > 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> PdmsNetwork::UnavailablePeers() const {
  return std::vector<std::string>(unavailable_peers_.begin(),
                                  unavailable_peers_.end());
}

std::set<std::string> PdmsNetwork::UnavailableStoredRelations() const {
  std::set<std::string> out = unavailable_stored_;
  if (!unavailable_peers_.empty()) {
    for (const StorageDescription& d : storage_) {
      if (unavailable_peers_.count(d.peer) > 0) {
        out.insert(d.stored_atom().predicate());
      }
    }
  }
  return out;
}

namespace {

// True if every body variable also occurs in the head (no projection).
bool ProjectionFree(const ConjunctiveQuery& cq) {
  return cq.ExistentialVariables().empty();
}

// DFS cycle detection over the Definition-3.1 graph.
bool HasCycle(const std::map<std::string, std::set<std::string>>& graph) {
  std::map<std::string, int> state;  // 0 = new, 1 = on stack, 2 = done
  // Iterative DFS with explicit stack of (node, child iterator position).
  for (const auto& [start, ignored] : graph) {
    if (state[start] != 0) continue;
    std::vector<std::pair<std::string, std::vector<std::string>>> stack;
    auto push = [&](const std::string& node) {
      state[node] = 1;
      std::vector<std::string> children;
      auto it = graph.find(node);
      if (it != graph.end()) {
        children.assign(it->second.begin(), it->second.end());
      }
      stack.emplace_back(node, std::move(children));
    };
    push(start);
    while (!stack.empty()) {
      auto& [node, children] = stack.back();
      if (children.empty()) {
        state[node] = 2;
        stack.pop_back();
        continue;
      }
      std::string next = children.back();
      children.pop_back();
      if (state[next] == 1) return true;
      if (state[next] == 0) push(next);
    }
  }
  return false;
}

}  // namespace

Classification PdmsNetwork::Classify() const {
  Classification c;

  // Definition 3.1 graph: arc from every relation of Q1 to every relation
  // of Q2 for each inclusion peer mapping Q1 ⊆ Q2.
  std::map<std::string, std::set<std::string>> incl_graph;
  std::map<std::string, std::set<std::string>> def_graph;
  std::set<std::string> definitional_heads;
  std::set<std::string> rhs_relations;  // relations on RHS of any mapping

  for (const PeerMapping& m : mappings_) {
    switch (m.kind) {
      case PeerMappingKind::kInclusion: {
        for (const Atom& l : m.lhs.body()) {
          for (const Atom& r : m.rhs.body()) {
            incl_graph[l.predicate()].insert(r.predicate());
          }
        }
        for (const Atom& r : m.rhs.body()) {
          rhs_relations.insert(r.predicate());
        }
        if (!m.lhs.comparisons().empty() || !m.rhs.comparisons().empty()) {
          c.comparisons_outside_safe_positions = true;
        }
        break;
      }
      case PeerMappingKind::kEquality: {
        c.has_peer_equalities = true;
        if (!ProjectionFree(m.lhs) || !ProjectionFree(m.rhs)) {
          c.peer_equalities_projection_free = false;
        }
        for (const Atom& r : m.rhs.body()) rhs_relations.insert(r.predicate());
        for (const Atom& l : m.lhs.body()) rhs_relations.insert(l.predicate());
        if (!m.lhs.comparisons().empty() || !m.rhs.comparisons().empty()) {
          c.comparisons_outside_safe_positions = true;
        }
        break;
      }
      case PeerMappingKind::kDefinitional: {
        definitional_heads.insert(m.rule.head().predicate());
        for (const Atom& b : m.rule.body()) {
          def_graph[m.rule.head().predicate()].insert(b.predicate());
        }
        break;
      }
    }
  }
  for (const StorageDescription& d : storage_) {
    if (d.is_equality) {
      c.has_equality_storage = true;
      if (!ProjectionFree(d.view)) {
        c.storage_equalities_projection_free = false;
      }
    }
    // Comparison predicates in storage descriptions are in the safe set
    // (Theorem 3.3.1), so they do not flip the flag.
  }

  c.inclusions_acyclic = !HasCycle(incl_graph);
  c.definitional_recursive = HasCycle(def_graph);
  for (const std::string& head : definitional_heads) {
    if (rhs_relations.count(head) > 0) {
      c.definitional_heads_isolated = false;
    }
  }

  // Complexity per Theorems 3.1-3.3.
  bool equalities_ok = (!c.has_peer_equalities ||
                        c.peer_equalities_projection_free) &&
                       c.definitional_heads_isolated;
  if (!c.inclusions_acyclic) {
    c.complexity = QueryComplexity::kUndecidable;
  } else if (c.has_peer_equalities && !c.peer_equalities_projection_free) {
    c.complexity = QueryComplexity::kUndecidable;
  } else if (!equalities_ok) {
    // Definitional head feeding the RHS of another description leaves the
    // Theorem 3.2.1 fragment; the theorem's proof techniques put this in
    // the undecidable general case, so report conservatively.
    c.complexity = QueryComplexity::kUndecidable;
  } else if (c.has_equality_storage &&
             !c.storage_equalities_projection_free) {
    c.complexity = QueryComplexity::kCoNpComplete;  // Theorem 3.2.2
  } else if (c.comparisons_outside_safe_positions) {
    c.complexity = QueryComplexity::kCoNpComplete;  // Theorem 3.3.2
  } else {
    c.complexity = QueryComplexity::kPolynomial;
  }
  // A query with comparison predicates degrades PTIME to co-NP (Thm 3.3.2).
  c.complexity_with_query_comparisons =
      c.complexity == QueryComplexity::kPolynomial
          ? QueryComplexity::kCoNpComplete
          : c.complexity;
  return c;
}

std::string PdmsNetwork::ToString() const {
  std::string out;
  for (const Peer& p : peers_) {
    out += p.ToString();
    out += "\n";
  }
  for (const StorageDescription& d : storage_) {
    out += d.ToString();
    out += "\n";
  }
  for (const PeerMapping& m : mappings_) {
    out += m.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace pdms
