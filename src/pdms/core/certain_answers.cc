#include "pdms/core/certain_answers.h"

#include "pdms/eval/evaluator.h"
#include "pdms/util/strings.h"

namespace pdms {

namespace {

// Builds the TGD `premise (+ premise comparisons) → conclusion`; fails if
// the conclusion side carries comparisons.
Result<Tgd> MakeTgd(std::vector<Atom> premise,
                    std::vector<Comparison> premise_cmps,
                    const ConjunctiveQuery& conclusion,
                    const std::string& name) {
  if (!conclusion.comparisons().empty()) {
    return Status::Unsupported(
        name + ": comparisons on the conclusion side of a dependency are "
               "not supported by the certain-answer oracle");
  }
  Tgd tgd;
  tgd.body = std::move(premise);
  tgd.comparisons = std::move(premise_cmps);
  tgd.head = conclusion.body();
  tgd.name = name;
  return tgd;
}

}  // namespace

Result<std::vector<Tgd>> NetworkToTgds(const PdmsNetwork& network) {
  std::vector<Tgd> tgds;
  for (const StorageDescription& d : network.storage_descriptions()) {
    // R(x̄) → body(Q). For equality descriptions only this sound direction
    // is used (the closed-world direction constrains the *given* stored
    // instance rather than generating peer facts).
    PDMS_ASSIGN_OR_RETURN(
        Tgd tgd, MakeTgd({d.view.head()}, {}, d.view, d.name));
    tgds.push_back(std::move(tgd));
  }
  for (const PeerMapping& m : network.peer_mappings()) {
    switch (m.kind) {
      case PeerMappingKind::kInclusion: {
        PDMS_ASSIGN_OR_RETURN(
            Tgd tgd, MakeTgd(m.lhs.body(), m.lhs.comparisons(), m.rhs,
                             m.name));
        tgds.push_back(std::move(tgd));
        break;
      }
      case PeerMappingKind::kEquality: {
        PDMS_ASSIGN_OR_RETURN(
            Tgd fwd, MakeTgd(m.lhs.body(), m.lhs.comparisons(), m.rhs,
                             m.name + " (lhs->rhs)"));
        tgds.push_back(std::move(fwd));
        PDMS_ASSIGN_OR_RETURN(
            Tgd bwd, MakeTgd(m.rhs.body(), m.rhs.comparisons(), m.lhs,
                             m.name + " (rhs->lhs)"));
        tgds.push_back(std::move(bwd));
        break;
      }
      case PeerMappingKind::kDefinitional: {
        Tgd tgd;
        tgd.body = m.rule.body();
        tgd.comparisons = m.rule.comparisons();
        tgd.head = {m.rule.head()};
        tgd.name = m.name;
        tgds.push_back(std::move(tgd));
        break;
      }
    }
  }
  return tgds;
}

Result<Relation> CertainAnswers(const PdmsNetwork& network,
                                const Database& stored,
                                const ConjunctiveQuery& query,
                                const ChaseOptions& options) {
  PDMS_ASSIGN_OR_RETURN(std::vector<Tgd> tgds, NetworkToTgds(network));
  PDMS_ASSIGN_OR_RETURN(Database chased,
                        ChaseDatabase(stored, tgds, options));
  PDMS_ASSIGN_OR_RETURN(Relation all, EvaluateCQ(query, chased));
  return DropNullTuples(all);
}

}  // namespace pdms
