#include "pdms/core/cost_estimator.h"

#include <algorithm>
#include <cmath>

#include "pdms/util/strings.h"

namespace pdms {

void LinkMap::SetZone(const std::string& node, size_t zone) {
  zone_[node] = zone;
  num_zones_ = std::max(num_zones_, zone + 1);
}

size_t LinkMap::ZoneOf(const std::string& node) const {
  auto it = zone_.find(node);
  return it == zone_.end() ? 0 : it->second;
}

void LinkMap::SetCoord(const std::string& node, double x, double y) {
  coord_[node] = {x, y};
}

void LinkMap::SetAccessMs(const std::string& node, double ms) {
  access_ms_[node] = ms;
}

double LinkMap::AccessMs(const std::string& node) const {
  auto it = access_ms_.find(node);
  return it == access_ms_.end() ? 0 : it->second;
}

void LinkMap::SetZonePairProps(size_t a, size_t b, const LinkProps& props) {
  zone_pair_[std::minmax(a, b)] = props;
}

LinkProps LinkMap::Get(const std::string& src, const std::string& dst) const {
  LinkProps props;
  if (mode_ == Mode::kGrid) {
    // Mesh: the intra props describe one grid hop; a link pays them per
    // Manhattan hop between the endpoints' coordinates (minimum one hop).
    props = intra_;
    double hops = 1.0;
    auto s = coord_.find(src);
    auto d = coord_.find(dst);
    if (s != coord_.end() && d != coord_.end()) {
      hops = std::max(1.0, std::abs(s->second.first - d->second.first) +
                               std::abs(s->second.second - d->second.second));
    }
    props.latency_ms = intra_.latency_ms * hops;
  } else {
    size_t zs = ZoneOf(src);
    size_t zd = ZoneOf(dst);
    if (zs == zd) {
      props = intra_;
    } else {
      auto it = zone_pair_.find(std::minmax(zs, zd));
      props = it == zone_pair_.end() ? inter_ : it->second;
    }
  }
  props.latency_ms += AccessMs(src) + AccessMs(dst);
  return props;
}

std::string LinkMap::TrunkKey(const std::string& src,
                              const std::string& dst) const {
  if (mode_ == Mode::kZonal) {
    size_t zs = ZoneOf(src);
    size_t zd = ZoneOf(dst);
    // Cross-zone traffic shares one queue per trunk direction; intra-zone
    // (and grid) links queue per node pair — effectively uncontended.
    if (zs != zd) return StrFormat("z%zu>z%zu", zs, zd);
  }
  return src + ">" + dst;
}

std::string LinkMap::ToString() const {
  std::string out = StrFormat(
      "mode=%s zones=%zu intra=(%.3f,%.1f,%.3f) inter=(%.3f,%.1f,%.3f)",
      mode_ == Mode::kZonal ? "zonal" : "grid", num_zones_, intra_.latency_ms,
      intra_.bytes_per_ms, intra_.per_message_ms, inter_.latency_ms,
      inter_.bytes_per_ms, inter_.per_message_ms);
  for (const auto& [pair, props] : zone_pair_) {
    out += StrFormat(" trunk[z%zu:z%zu]=(%.3f,%.1f,%.3f)", pair.first,
                     pair.second, props.latency_ms, props.bytes_per_ms,
                     props.per_message_ms);
  }
  for (const auto& [node, zone] : zone_) {
    out += StrFormat(" %s:z%zu", node.c_str(), zone);
    double access = AccessMs(node);
    if (access > 0) out += StrFormat("+%.3f", access);
  }
  for (const auto& [node, xy] : coord_) {
    out += StrFormat(" %s:(%.0f,%.0f)", node.c_str(), xy.first, xy.second);
  }
  return out;
}

CostEstimator::CostEstimator(const PdmsNetwork* network, const LinkMap* links,
                             std::string origin,
                             const PeerHealthTracker* health, Options options)
    : network_(network),
      links_(links),
      origin_(std::move(origin)),
      health_(health),
      options_(options) {}

double CostEstimator::StaticRttMs(const std::string& peer) const {
  if (links_ == nullptr) return 0;
  return links_->Get(origin_, peer).OneWayMs(options_.nominal_bytes) +
         links_->Get(peer, origin_).OneWayMs(options_.nominal_bytes);
}

double CostEstimator::PeerCostMs(const std::string& peer) const {
  double cost = StaticRttMs(peer);
  if (health_ != nullptr) {
    double srtt = health_->SrttMs(peer);
    if (srtt > 0) {
      cost = (1.0 - options_.srtt_blend) * cost + options_.srtt_blend * srtt;
    }
    if (health_->IsSuspected(peer)) cost += options_.suspect_penalty_ms;
  }
  return cost;
}

double CostEstimator::ScanCostMs(const std::string& stored) const {
  double best = 0;
  bool found = false;
  for (const StorageDescription& d : network_->storage_descriptions()) {
    if (d.stored_atom().predicate() != stored) continue;
    double cost = d.peer.empty() ? 0 : PeerCostMs(d.peer);
    if (!found || cost < best) best = cost;
    found = true;
  }
  return found ? best : 0;
}

Result<std::string> CostEstimator::CheapestProvider(
    const std::string& stored) const {
  double best = 0;
  bool found = false;
  std::string provider;
  for (const StorageDescription& d : network_->storage_descriptions()) {
    if (d.stored_atom().predicate() != stored) continue;
    double cost = d.peer.empty() ? 0 : PeerCostMs(d.peer);
    // Strictly-cheaper wins; ties keep the earliest description so a
    // single-provider relation resolves exactly like the legacy
    // StoredRelationPeer lookup.
    if (!found || cost < best) {
      best = cost;
      provider = d.peer;
    }
    found = true;
  }
  if (!found) return Status::NotFound("no storage description for " + stored);
  return provider;
}

}  // namespace pdms
