#ifndef PDMS_CORE_NETWORK_H_
#define PDMS_CORE_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pdms/core/ppl.h"
#include "pdms/util/status.h"

namespace pdms {

/// The Section-3 complexity of finding all certain answers for a network.
enum class QueryComplexity {
  /// All certain answers computable in PTIME; the reformulation algorithm
  /// is complete (Theorems 3.1.2, 3.2.1, 3.3.1).
  kPolynomial,
  /// co-NP-complete (Theorems 3.2.2/3.2.3, 3.3.2); reformulation returns
  /// only (but not necessarily all) certain answers.
  kCoNpComplete,
  /// Undecidable in general (Theorem 3.1.1); reformulation is sound and
  /// terminating but incomplete.
  kUndecidable,
};

const char* QueryComplexityName(QueryComplexity c);

/// Structural analysis of a PDMS specification per Section 3.
struct Classification {
  bool inclusions_acyclic = true;        // Definition 3.1
  bool has_peer_equalities = false;
  bool has_equality_storage = false;
  bool peer_equalities_projection_free = true;
  bool storage_equalities_projection_free = true;
  bool definitional_heads_isolated = true;  // Thm 3.2.1 condition (2)
  bool definitional_recursive = false;
  bool comparisons_outside_safe_positions = false;  // Thm 3.3 condition

  /// Overall complexity of query answering for comparison-free queries.
  QueryComplexity complexity = QueryComplexity::kPolynomial;

  /// Complexity when the query itself contains comparison predicates
  /// (Theorem 3.3.2 degrades PTIME cases to co-NP).
  QueryComplexity complexity_with_query_comparisons =
      QueryComplexity::kPolynomial;

  /// Human-readable multi-line justification.
  std::string Explain() const;
};

/// One catalog mutation, recorded in the network's bounded change log so
/// dependency-tracked caches (docs/churn_invalidation.md) can invalidate
/// only the entries whose footprint intersects the change instead of
/// clearing wholesale on every revision bump.
struct CatalogChange {
  enum class Kind {
    kPeerAdded,
    kStorageAdded,
    kMappingAdded,
    kMappingRemoved,
    kMappingEdited,
    kAvailability,
  };

  Kind kind = Kind::kPeerAdded;
  /// Position in the global change sequence (1-based; `change_seq()` is
  /// the seq of the latest change).
  uint64_t seq = 0;
  /// The predicates whose candidate sets this change directly touches:
  /// the head of an added/removed definitional mapping, the RHS (and for
  /// equalities also LHS) body relations of an inclusion, a storage
  /// description's body relations plus its stored name, or the stored
  /// relations whose availability flipped. Transitive effects (a change
  /// deep in a chain resurrecting a dead end upstream) are derived by the
  /// cache-side analyzer from a reachability diff, not recorded here.
  std::set<std::string> predicates;
  /// Normalization assigns description ids positionally (storage
  /// descriptions first, then mappings), so inserting or removing an
  /// entry renumbers every description at or after this index. Cached
  /// state that names a description id >= this threshold is stale even if
  /// no predicate matches. SIZE_MAX = no ids shifted (pure append /
  /// availability flip).
  size_t id_shift_from = SIZE_MAX;
};

const char* CatalogChangeKindName(CatalogChange::Kind kind);

/// The full specification of a PDMS `N = (peers, schemas, stored relations,
/// peer mappings L_N, storage descriptions D_N)` — Section 2's definition.
/// This is a catalog only; data lives in a `Database` keyed by stored
/// relation names.
class PdmsNetwork {
 public:
  PdmsNetwork() = default;

  /// Registers a peer schema. Peer names and per-peer relation names must
  /// be unique.
  Status AddPeer(Peer peer);

  /// Convenience: registers a peer with the given `relation/arity` specs,
  /// e.g. AddPeer("H", {{"Doctor", 5}, {"Patient", 3}}).
  Status AddPeer(const std::string& name,
                 std::vector<std::pair<std::string, size_t>> relations);

  /// Registers a storage description; the stored relation is declared
  /// implicitly by its head atom. Validates that body atoms reference
  /// declared peer relations with correct arities.
  Status AddStorageDescription(StorageDescription desc);

  /// Registers a peer mapping; validates relation references, head
  /// compatibility (identical interface heads for inclusions/equalities)
  /// and safety.
  Status AddPeerMapping(PeerMapping mapping);

  /// Removes the named peer mapping (churn: a peer retracting a semantic
  /// link). Later mappings keep their relative order but their description
  /// ids shift, which the logged change records.
  Status RemovePeerMapping(const std::string& name);

  /// Replaces the named peer mapping in place with `next` (validated like
  /// AddPeerMapping). `next` inherits the old name when its own is empty.
  Status ReplacePeerMapping(const std::string& name, PeerMapping next);

  const std::vector<Peer>& peers() const { return peers_; }
  const std::vector<StorageDescription>& storage_descriptions() const {
    return storage_;
  }
  const std::vector<PeerMapping>& peer_mappings() const { return mappings_; }

  /// True if `qualified` ("Peer:Relation") is a declared peer relation.
  bool IsPeerRelation(const std::string& qualified) const;

  /// True if `name` is a declared stored relation.
  bool IsStoredRelation(const std::string& name) const;

  /// Arity of a peer relation or stored relation.
  Result<size_t> RelationArity(const std::string& name) const;

  /// Names of all stored relations, sorted.
  std::vector<std::string> StoredRelationNames() const;

  /// The peer serving a stored relation (from its first storage
  /// description); error if the name is not a stored relation.
  Result<std::string> StoredRelationPeer(const std::string& name) const;

  /// Every peer declaring a storage description for `name`, in description
  /// order (the first entry is the legacy StoredRelationPeer choice).
  /// Replicated stored relations — several descriptions sharing one head —
  /// give the cost-aware coordinator a provider choice; empty if the name
  /// is not a stored relation.
  std::vector<std::string> StoredRelationPeers(const std::string& name) const;

  // --- Availability (robustness layer) ---
  //
  // Peers in a PDMS come and go; the catalog tracks which are reachable
  // right now. Availability is *state*, not specification: toggling it
  // does not change the mappings and does not invalidate normalization
  // (`revision()` is unchanged) — the reformulator simply treats stored
  // relations of down peers as unusable sources for the query at hand.

  /// Marks a peer reachable/unreachable. Error if the peer is undeclared.
  Status SetPeerAvailable(const std::string& peer, bool available);
  /// Marks a single stored relation reachable/unreachable (finer-grained
  /// than a whole peer). Error if the name is not a stored relation.
  Status SetStoredRelationAvailable(const std::string& name, bool available);

  /// True unless the peer was marked unavailable.
  bool IsPeerAvailable(const std::string& peer) const;
  /// True unless the relation — or the peer serving it — is unavailable.
  bool IsStoredRelationAvailable(const std::string& name) const;

  /// Peers currently marked unavailable, sorted.
  std::vector<std::string> UnavailablePeers() const;
  /// Stored relations that cannot be scanned right now: marked down
  /// themselves, or served by a down peer.
  std::set<std::string> UnavailableStoredRelations() const;

  /// Monotonic counter bumped by every *catalog* mutation (AddPeer,
  /// AddStorageDescription, AddPeerMapping). Cached normalizations are
  /// valid exactly as long as the revision they were built at.
  uint64_t revision() const { return revision_; }

  /// Monotonic counter bumped whenever the availability *state* actually
  /// changes (SetPeerAvailable / SetStoredRelationAvailable flipping a
  /// peer or relation; redundant calls don't count). Availability never
  /// bumps `revision()` — normalizations stay valid — but cached query
  /// *plans* prune unavailable sources, so they are valid only for the
  /// (revision, availability_epoch) pair they were built at
  /// (docs/plan_cache.md).
  uint64_t availability_epoch() const { return availability_epoch_; }

  // --- Change log (dependency-tracked invalidation) ---
  //
  // Every catalog mutation — including availability flips — appends one
  // CatalogChange to a bounded log. Caches remember the last sequence
  // number they digested and ask for the delta instead of clearing on
  // every revision/epoch bump (docs/churn_invalidation.md).

  /// Sequence number of the latest change (0 = pristine network).
  uint64_t change_seq() const { return change_seq_; }

  /// The changes with seq > `from_seq`, oldest first. Returns nullopt when
  /// the log no longer retains that far back (the consumer fell more than
  /// the retention window behind and must do a full reset).
  std::optional<std::vector<CatalogChange>> ChangesSince(
      uint64_t from_seq) const;

  /// Structural complexity analysis (Section 3).
  Classification Classify() const;

  /// Full textual spec (round-trips through the PPL parser).
  std::string ToString() const;

 private:
  Status ValidateBody(const ConjunctiveQuery& cq,
                      const std::string& context) const;
  Status ValidateMapping(const PeerMapping& mapping) const;
  void LogChange(CatalogChange::Kind kind, std::set<std::string> predicates,
                 size_t id_shift_from);
  /// Stored relations served by `peer` (availability-flip footprint).
  std::set<std::string> StoredRelationsOf(const std::string& peer) const;

  std::vector<Peer> peers_;
  std::vector<StorageDescription> storage_;
  std::vector<PeerMapping> mappings_;
  std::map<std::string, size_t> peer_relation_arity_;  // qualified -> arity
  std::map<std::string, size_t> stored_relation_arity_;
  std::set<std::string> unavailable_peers_;
  std::set<std::string> unavailable_stored_;
  uint64_t revision_ = 0;
  uint64_t availability_epoch_ = 0;
  // Bounded retention: enough for any realistic query-to-query delta; a
  // consumer further behind resets wholesale, which is always sound.
  static constexpr size_t kMaxChangeLog = 256;
  std::deque<CatalogChange> change_log_;
  uint64_t change_seq_ = 0;
};

}  // namespace pdms

#endif  // PDMS_CORE_NETWORK_H_
