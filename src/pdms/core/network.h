#ifndef PDMS_CORE_NETWORK_H_
#define PDMS_CORE_NETWORK_H_

#include <map>
#include <string>
#include <vector>

#include "pdms/core/ppl.h"
#include "pdms/util/status.h"

namespace pdms {

/// The Section-3 complexity of finding all certain answers for a network.
enum class QueryComplexity {
  /// All certain answers computable in PTIME; the reformulation algorithm
  /// is complete (Theorems 3.1.2, 3.2.1, 3.3.1).
  kPolynomial,
  /// co-NP-complete (Theorems 3.2.2/3.2.3, 3.3.2); reformulation returns
  /// only (but not necessarily all) certain answers.
  kCoNpComplete,
  /// Undecidable in general (Theorem 3.1.1); reformulation is sound and
  /// terminating but incomplete.
  kUndecidable,
};

const char* QueryComplexityName(QueryComplexity c);

/// Structural analysis of a PDMS specification per Section 3.
struct Classification {
  bool inclusions_acyclic = true;        // Definition 3.1
  bool has_peer_equalities = false;
  bool has_equality_storage = false;
  bool peer_equalities_projection_free = true;
  bool storage_equalities_projection_free = true;
  bool definitional_heads_isolated = true;  // Thm 3.2.1 condition (2)
  bool definitional_recursive = false;
  bool comparisons_outside_safe_positions = false;  // Thm 3.3 condition

  /// Overall complexity of query answering for comparison-free queries.
  QueryComplexity complexity = QueryComplexity::kPolynomial;

  /// Complexity when the query itself contains comparison predicates
  /// (Theorem 3.3.2 degrades PTIME cases to co-NP).
  QueryComplexity complexity_with_query_comparisons =
      QueryComplexity::kPolynomial;

  /// Human-readable multi-line justification.
  std::string Explain() const;
};

/// The full specification of a PDMS `N = (peers, schemas, stored relations,
/// peer mappings L_N, storage descriptions D_N)` — Section 2's definition.
/// This is a catalog only; data lives in a `Database` keyed by stored
/// relation names.
class PdmsNetwork {
 public:
  PdmsNetwork() = default;

  /// Registers a peer schema. Peer names and per-peer relation names must
  /// be unique.
  Status AddPeer(Peer peer);

  /// Convenience: registers a peer with the given `relation/arity` specs,
  /// e.g. AddPeer("H", {{"Doctor", 5}, {"Patient", 3}}).
  Status AddPeer(const std::string& name,
                 std::vector<std::pair<std::string, size_t>> relations);

  /// Registers a storage description; the stored relation is declared
  /// implicitly by its head atom. Validates that body atoms reference
  /// declared peer relations with correct arities.
  Status AddStorageDescription(StorageDescription desc);

  /// Registers a peer mapping; validates relation references, head
  /// compatibility (identical interface heads for inclusions/equalities)
  /// and safety.
  Status AddPeerMapping(PeerMapping mapping);

  const std::vector<Peer>& peers() const { return peers_; }
  const std::vector<StorageDescription>& storage_descriptions() const {
    return storage_;
  }
  const std::vector<PeerMapping>& peer_mappings() const { return mappings_; }

  /// True if `qualified` ("Peer:Relation") is a declared peer relation.
  bool IsPeerRelation(const std::string& qualified) const;

  /// True if `name` is a declared stored relation.
  bool IsStoredRelation(const std::string& name) const;

  /// Arity of a peer relation or stored relation.
  Result<size_t> RelationArity(const std::string& name) const;

  /// Names of all stored relations, sorted.
  std::vector<std::string> StoredRelationNames() const;

  /// Structural complexity analysis (Section 3).
  Classification Classify() const;

  /// Full textual spec (round-trips through the PPL parser).
  std::string ToString() const;

 private:
  Status ValidateBody(const ConjunctiveQuery& cq,
                      const std::string& context) const;

  std::vector<Peer> peers_;
  std::vector<StorageDescription> storage_;
  std::vector<PeerMapping> mappings_;
  std::map<std::string, size_t> peer_relation_arity_;  // qualified -> arity
  std::map<std::string, size_t> stored_relation_arity_;
};

}  // namespace pdms

#endif  // PDMS_CORE_NETWORK_H_
