#ifndef PDMS_CORE_PPL_H_
#define PDMS_CORE_PPL_H_

#include <string>
#include <vector>

#include "pdms/lang/conjunctive_query.h"

namespace pdms {

/// A storage description (Section 2.1.2): relates a stored relation `R` at
/// a peer to a query `Q` over peer schemas:
///
///   A:R = Q   (equality: the peer stores exactly the result of Q)
///   A:R ⊆ Q   (containment: the peer stores a subset — open world)
///
/// Represented as a conjunctive query whose head is the stored atom and
/// whose body is Q. Example 2.3's first description is written
///   `doc(sid, last, loc) :- FH:Staff(sid, f, last, s, e),
///                           FH:Doctor(sid, loc)` with is_equality = false.
struct StorageDescription {
  std::string peer;  // the peer providing the stored relation
  ConjunctiveQuery view;  // head = stored atom, body = Q over peer relations
  bool is_equality = false;
  std::string name;  // diagnostic label (auto-generated if empty)

  const Atom& stored_atom() const { return view.head(); }
  std::string ToString() const;
};

/// The three peer-mapping forms of PPL (Section 2.1.2).
enum class PeerMappingKind {
  /// Q1(Ā1) ⊆ Q2(Ā2): evaluating Q1 always yields a subset of Q2.
  kInclusion,
  /// Q1(Ā1) = Q2(Ā2): the two results coincide (creates a cycle).
  kEquality,
  /// A datalog rule over peer relations; multiple rules with the same head
  /// express disjunction (GAV-style).
  kDefinitional,
};

/// A peer mapping. For inclusions/equalities both sides are conjunctive
/// queries with identical heads (the shared interface variables); for
/// definitional mappings only `rule` is used.
struct PeerMapping {
  PeerMappingKind kind = PeerMappingKind::kDefinitional;
  ConjunctiveQuery lhs;  // kind != kDefinitional
  ConjunctiveQuery rhs;  // kind != kDefinitional
  Rule rule;             // kind == kDefinitional
  std::string name;      // diagnostic label

  std::string ToString() const;
};

/// A peer: a named schema of virtual peer relations (name -> arity). A
/// peer need not store any data — mediator-only peers (H, FS, 9DC in
/// Figure 1) just relate other peers' schemas.
struct Peer {
  std::string name;
  /// Relation name (unqualified) -> arity.
  std::vector<std::pair<std::string, size_t>> relations;

  std::string ToString() const;
};

/// Builds the globally-unique qualified relation name `Peer:Relation`.
std::string QualifiedName(const std::string& peer,
                          const std::string& relation);

}  // namespace pdms

#endif  // PDMS_CORE_PPL_H_
