#include "pdms/core/reformulator.h"

#include "pdms/constraints/cq_containment.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/util/timer.h"

namespace pdms {

Reformulator::Reformulator(const PdmsNetwork& network,
                           ReformulationOptions options)
    : rules_(Normalize(network)), options_(options) {}

Result<RuleGoalTree> Reformulator::BuildTree(const ConjunctiveQuery& query) {
  TreeBuilder builder(rules_, options_);
  return builder.Build(query);
}

Result<ReformulationResult> Reformulator::ReformulateStreaming(
    const ConjunctiveQuery& query, const RewritingSink& sink) {
  return ReformulateStreaming(query, options_, sink);
}

Result<ReformulationResult> Reformulator::ReformulateStreaming(
    const ConjunctiveQuery& query, const ReformulationOptions& options,
    const RewritingSink& sink) {
  WallTimer timer;
  TreeBuilder builder(rules_, options);
  PDMS_ASSIGN_OR_RETURN(RuleGoalTree tree, builder.Build(query));
  tree.stats.build_ms = timer.ElapsedMillis();

  ReformulationResult result;
  result.stats = tree.stats;
  WallTimer enumerate_timer;
  PDMS_RETURN_IF_ERROR(EnumerateRewritings(
      tree, options, timer, &result.stats,
      [&](const ConjunctiveQuery& cq) {
        if (!sink(cq)) return false;
        result.rewriting.Add(cq);
        return true;
      }));
  result.stats.enumerate_ms = enumerate_timer.ElapsedMillis();

  if (options.remove_redundant) {
    // Minimize comparison-free disjuncts and drop disjuncts contained in
    // others; cross-disjunct containment uses the semantic test so bounds
    // like `x < 3 ⊆ x < 5` are recognized.
    UnionQuery minimized;
    for (const ConjunctiveQuery& cq : result.rewriting.disjuncts()) {
      minimized.Add(MinimizeCQ(cq));
    }
    result.rewriting = RemoveRedundantDisjunctsWithComparisons(minimized);
    result.stats.rewritings = result.rewriting.size();
  }
  return result;
}

Result<ReformulationResult> Reformulator::Reformulate(
    const ConjunctiveQuery& query) {
  return ReformulateStreaming(query,
                              [](const ConjunctiveQuery&) { return true; });
}

Result<ReformulationResult> Reformulator::Reformulate(
    const ConjunctiveQuery& query, const ReformulationOptions& options) {
  return ReformulateStreaming(query, options,
                              [](const ConjunctiveQuery&) { return true; });
}

}  // namespace pdms
