#include "pdms/core/reformulator.h"

#include "pdms/constraints/cq_containment.h"
#include "pdms/lang/homomorphism.h"
#include "pdms/util/timer.h"

namespace pdms {

Reformulator::Reformulator(const PdmsNetwork& network,
                           ReformulationOptions options)
    : rules_(Normalize(network)), options_(options) {}

Result<RuleGoalTree> Reformulator::BuildTree(const ConjunctiveQuery& query) {
  TreeBuilder builder(rules_, options_);
  return builder.Build(query);
}

Result<ReformulationResult> Reformulator::ReformulateStreaming(
    const ConjunctiveQuery& query, const RewritingSink& sink) {
  return ReformulateStreaming(query, options_, sink);
}

namespace {

// Folds one query's reformulation stats into the registry — counters for
// the tree/prune/rewriting counts, histograms for the phase timings. Done
// once per query rather than per event so metrics stay cheap even with the
// registry attached.
void RecordReformulationMetrics(const ReformulationStats& stats,
                                obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->Add("reform.queries");
  metrics->Add("reform.goal_nodes", stats.goal_nodes);
  metrics->Add("reform.rule_nodes", stats.rule_nodes);
  metrics->Add("reform.definitional_nodes", stats.definitional_nodes);
  metrics->Add("reform.inclusion_nodes", stats.inclusion_nodes);
  metrics->Add("reform.pruned_unsat", stats.pruned_unsat);
  metrics->Add("reform.pruned_dead", stats.pruned_dead);
  metrics->Add("reform.pruned_guard", stats.pruned_guard);
  metrics->Add("reform.pruned_unavailable", stats.pruned_unavailable);
  metrics->Add("reform.combos_failed", stats.combos_failed);
  metrics->Add("reform.rewritings", stats.rewritings);
  metrics->Add("reform.duplicate_disjuncts", stats.duplicate_disjuncts);
  if (stats.goal_memo_hits > 0) {
    metrics->Add("cache.goal_memo_hits", stats.goal_memo_hits);
    metrics->Add("cache.goal_memo_nodes", stats.goal_memo_nodes);
  }
  if (stats.tree_truncated) metrics->Add("reform.tree_truncated");
  if (stats.enumeration_truncated) {
    metrics->Add("reform.enumeration_truncated");
  }
  metrics->Observe("reform.build_ms", stats.build_ms);
  metrics->Observe("reform.enumerate_ms", stats.enumerate_ms);
  if (!stats.time_to_rewriting_ms.empty()) {
    metrics->Observe("reform.first_rewriting_ms",
                     stats.time_to_rewriting_ms.front());
  }
}

}  // namespace

Result<ReformulationResult> Reformulator::ReformulateStreaming(
    const ConjunctiveQuery& query, const ReformulationOptions& options,
    const RewritingSink& sink) {
  obs::TraceContext* trace = options.trace;
  obs::ScopedSpan reform_span(trace, "reformulate");
  reform_span.Set("query", query.head().predicate());

  WallTimer timer;
  obs::ScopedSpan build_span(trace, "build_tree");
  TreeBuilder builder(rules_, options);
  PDMS_ASSIGN_OR_RETURN(RuleGoalTree tree, builder.Build(query));
  tree.stats.build_ms = timer.ElapsedMillis();
  build_span.Set("nodes", static_cast<uint64_t>(tree.stats.total_nodes()));
  build_span.Set("truncated", tree.stats.tree_truncated);
  build_span.End();

  ReformulationResult result;
  result.stats = tree.stats;
  WallTimer enumerate_timer;
  obs::ScopedSpan enum_span(trace, "enumerate");
  PDMS_RETURN_IF_ERROR(EnumerateRewritings(
      tree, options, timer, &result.stats,
      [&](const ConjunctiveQuery& cq) {
        if (trace != nullptr) {
          obs::SpanId mark = trace->Instant("rewriting");
          trace->SetAttribute(
              mark, "index", static_cast<uint64_t>(result.rewriting.size()));
        }
        if (!sink(cq)) return false;
        result.rewriting.Add(cq);
        return true;
      }));
  result.stats.enumerate_ms = enumerate_timer.ElapsedMillis();

  if (options.remove_redundant) {
    // Minimize comparison-free disjuncts and drop disjuncts contained in
    // others; cross-disjunct containment uses the semantic test so bounds
    // like `x < 3 ⊆ x < 5` are recognized.
    UnionQuery minimized;
    for (const ConjunctiveQuery& cq : result.rewriting.disjuncts()) {
      minimized.Add(MinimizeCQ(cq));
    }
    result.rewriting = RemoveRedundantDisjunctsWithComparisons(minimized);
    result.stats.rewritings = result.rewriting.size();
  }
  enum_span.Set("rewritings", static_cast<uint64_t>(result.stats.rewritings));
  enum_span.Set("truncated", result.stats.enumeration_truncated);
  enum_span.End();
  RecordReformulationMetrics(result.stats, options.metrics);
  return result;
}

Result<ReformulationResult> Reformulator::Reformulate(
    const ConjunctiveQuery& query) {
  return ReformulateStreaming(query,
                              [](const ConjunctiveQuery&) { return true; });
}

Result<ReformulationResult> Reformulator::Reformulate(
    const ConjunctiveQuery& query, const ReformulationOptions& options) {
  return ReformulateStreaming(query, options,
                              [](const ConjunctiveQuery&) { return true; });
}

}  // namespace pdms
