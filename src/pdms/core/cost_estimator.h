#ifndef PDMS_CORE_COST_ESTIMATOR_H_
#define PDMS_CORE_COST_ESTIMATOR_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pdms/core/network.h"
#include "pdms/fault/peer_health.h"
#include "pdms/util/status.h"

namespace pdms {

/// Static properties of one directed link in the modeled topology
/// (docs/network_cost_model.md). Together they define the one-way cost of
/// shipping a message of a given size:
///
///   one_way_ms = latency_ms + per_message_ms + bytes / bytes_per_ms
///
/// `per_message_ms` is the fixed per-message occupancy of the link — the
/// knob the contention model queues on — and `bytes_per_ms = 0` means
/// infinite bandwidth (no serialization term).
struct LinkProps {
  double latency_ms = 1.0;
  double bytes_per_ms = 0;
  double per_message_ms = 0;

  double OneWayMs(size_t bytes) const {
    double out = latency_ms + per_message_ms;
    if (bytes_per_ms > 0) out += static_cast<double>(bytes) / bytes_per_ms;
    return out;
  }
};

/// The static link-cost map layered over a peer topology: every node is
/// assigned a zone (clustered/community WAN, hub-spoke) or a grid
/// coordinate (mesh), and link properties are derived per node pair. Two
/// zonal nodes in the same zone talk over the intra-zone props; nodes in
/// different zones talk over the shared inter-zone trunk (overridable per
/// zone pair). Grid nodes pay the intra props once per Manhattan hop.
/// Per-node `access_ms` models a last-mile uplink (hub-spoke leaves) and
/// is added to the latency of every link touching the node.
///
/// `TrunkKey` names the contention domain of a link: all cross-zone
/// traffic between the same (ordered) zone pair shares one FIFO queue in
/// the contention network model, while intra-zone and grid links queue per
/// node pair. Unassigned nodes land in zone 0, so an empty map degrades to
/// a single uniform LAN.
class LinkMap {
 public:
  enum class Mode { kZonal, kGrid };

  void set_mode(Mode mode) { mode_ = mode; }
  Mode mode() const { return mode_; }

  void SetZone(const std::string& node, size_t zone);
  size_t ZoneOf(const std::string& node) const;
  /// 1 + the highest assigned zone index (1 for an empty map).
  size_t num_zones() const { return num_zones_; }

  /// Grid mode only: the node's mesh coordinate.
  void SetCoord(const std::string& node, double x, double y);

  /// Extra one-way latency for every link touching `node` (last-mile
  /// uplink). Defaults to 0.
  void SetAccessMs(const std::string& node, double ms);
  double AccessMs(const std::string& node) const;

  void set_intra_props(const LinkProps& props) { intra_ = props; }
  void set_inter_props(const LinkProps& props) { inter_ = props; }
  const LinkProps& intra_props() const { return intra_; }
  const LinkProps& inter_props() const { return inter_; }
  /// Overrides the trunk between two zones (stored symmetric).
  void SetZonePairProps(size_t a, size_t b, const LinkProps& props);

  /// Effective properties of the src -> dst link, access latency folded
  /// into `latency_ms`. Deterministic: a pure function of the assignments.
  LinkProps Get(const std::string& src, const std::string& dst) const;

  /// Contention-domain name of the src -> dst link (see class comment).
  std::string TrunkKey(const std::string& src, const std::string& dst) const;

  /// Deterministic dump for tests and debugging.
  std::string ToString() const;

 private:
  Mode mode_ = Mode::kZonal;
  std::map<std::string, size_t> zone_;
  std::map<std::string, std::pair<double, double>> coord_;
  std::map<std::string, double> access_ms_;
  LinkProps intra_{0.5, 0, 0};
  LinkProps inter_{20.0, 0, 0};
  std::map<std::pair<size_t, size_t>, LinkProps> zone_pair_;
  size_t num_zones_ = 1;
};

/// Round-trip cost estimates for the query answering path
/// (docs/network_cost_model.md): static link costs from a LinkMap blended
/// with the live EWMA SRTT the PeerHealthTracker already maintains. The
/// reformulator uses ScanCostMs to order expansion candidates cheapest-
/// first, the qp planner annotates plan explains with it, and the
/// simulated coordinator uses CheapestProvider to pick among replicated
/// storage descriptions. Estimates only ever reorder work — answer
/// contents never depend on them — so a wildly wrong estimate costs
/// latency, not soundness.
///
/// All inputs are borrowed and must outlive the estimator; `health` is
/// nullable (static costs only). Every method is const and deterministic
/// in (catalog, link map, tracker state).
class CostEstimator {
 public:
  struct Options {
    /// Weight of the live SRTT when the tracker has a sample for the peer;
    /// the static estimate keeps the rest.
    double srtt_blend = 0.5;
    /// Added to the estimate of a currently-suspected peer so replicas on
    /// healthy peers win ties without hard-excluding the suspect.
    double suspect_penalty_ms = 10000.0;
    /// Nominal message size used for static round-trip estimates.
    size_t nominal_bytes = 256;
  };

  CostEstimator(const PdmsNetwork* network, const LinkMap* links,
                std::string origin, const PeerHealthTracker* health,
                Options options);
  // Split from the full overload instead of `Options options = {}`: a
  // brace default argument of a nested aggregate with member initializers
  // trips GCC while the enclosing class is still incomplete.
  CostEstimator(const PdmsNetwork* network, const LinkMap* links,
                std::string origin, const PeerHealthTracker* health = nullptr)
      : CostEstimator(network, links, std::move(origin), health, Options()) {}

  /// Static round trip origin -> peer -> origin at nominal message size.
  double StaticRttMs(const std::string& peer) const;

  /// StaticRttMs blended with the tracker's SRTT sample (when present)
  /// plus the suspicion penalty (when suspected).
  double PeerCostMs(const std::string& peer) const;

  /// Estimated round-trip cost of scanning `stored`: the minimum
  /// PeerCostMs over its providers. 0 for relations served locally (no
  /// owning peer) or unknown to the catalog.
  double ScanCostMs(const std::string& stored) const;

  /// The cheapest provider of `stored` among its storage descriptions;
  /// ties break toward the earliest description, so a single-provider
  /// relation always resolves to the legacy owner.
  Result<std::string> CheapestProvider(const std::string& stored) const;

  const LinkMap* links() const { return links_; }
  const std::string& origin() const { return origin_; }

 private:
  const PdmsNetwork* network_;        // not owned
  const LinkMap* links_;              // not owned
  std::string origin_;
  const PeerHealthTracker* health_;   // not owned; may be null
  Options options_;
};

}  // namespace pdms

#endif  // PDMS_CORE_COST_ESTIMATOR_H_
