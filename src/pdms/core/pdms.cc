#include "pdms/core/pdms.h"

#include <algorithm>
#include <set>

#include "pdms/exec/thread_pool.h"
#include "pdms/fault/access.h"
#include "pdms/eval/evaluator.h"
#include "pdms/lang/canonical.h"
#include "pdms/lang/parser.h"
#include "pdms/qp/engine.h"
#include "pdms/util/strings.h"

namespace pdms {

Pdms::Pdms(ReformulationOptions options) : options_(options) {}

Pdms::~Pdms() = default;
Pdms::Pdms(Pdms&&) noexcept = default;
Pdms& Pdms::operator=(Pdms&&) noexcept = default;

qp::Engine* Pdms::engine() {
  if (engine_ == nullptr) engine_ = std::make_unique<qp::Engine>();
  return engine_.get();
}

exec::ThreadPool* Pdms::Executor() {
  if (options_.threads <= 1) return nullptr;
  size_t workers = options_.threads - 1;  // the caller helps while waiting
  if (pool_ == nullptr || pool_->workers() != workers) {
    pool_ = std::make_unique<exec::ThreadPool>(workers);
  }
  return pool_.get();
}

Status Pdms::LoadProgram(std::string_view text) {
  // Catalog additions bump the network revision, which GetReformulator
  // checks; no explicit invalidation is needed here.
  return ParsePplProgramInto(text, &network_, &data_);
}

PdmsNetwork* Pdms::mutable_network() { return &network_; }

FaultInjector* Pdms::mutable_fault_injector() {
  if (injector_ == nullptr) injector_ = std::make_unique<FaultInjector>(1);
  return injector_.get();
}

void Pdms::set_fault_seed(uint64_t seed) {
  injector_ = std::make_unique<FaultInjector>(seed);
}

Status Pdms::Insert(std::string_view stored_relation, Tuple tuple) {
  std::string name(stored_relation);
  if (!network_.IsStoredRelation(name)) {
    return Status::NotFound("not a stored relation: " + name);
  }
  PDMS_ASSIGN_OR_RETURN(size_t arity, network_.RelationArity(name));
  if (arity != tuple.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu does not match %s/%zu", tuple.size(),
                  name.c_str(), arity));
  }
  data_.Insert(name, std::move(tuple));
  // Keep the vectorized engine's statistics current: the appended row is
  // converted incrementally (no rebuild) and the `qp.*` stat counters
  // move with it.
  if (options_.vectorized_eval) {
    engine()->ObserveRelation(*data_.Find(name), metrics_);
  }
  return Status::Ok();
}

void Pdms::set_options(const ReformulationOptions& options) {
  options_ = options;
  // The cached reformulator (if any) receives the new options — and is
  // revalidated against the network revision — inside GetReformulator, so
  // an options change can never resurrect a stale normalization.
}

Result<ConjunctiveQuery> Pdms::ParseQuery(std::string_view text) const {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseRuleText(text));
  // Queries must range over peer relations (or stored relations directly).
  for (const Atom& a : query.body()) {
    if (!network_.IsPeerRelation(a.predicate()) &&
        !network_.IsStoredRelation(a.predicate())) {
      return Status::NotFound("query references unknown relation " +
                              a.predicate());
    }
    PDMS_ASSIGN_OR_RETURN(size_t arity,
                          network_.RelationArity(a.predicate()));
    if (arity != a.arity()) {
      return Status::InvalidArgument(
          StrFormat("query uses %s with arity %zu (declared %zu)",
                    a.predicate().c_str(), a.arity(), arity));
    }
  }
  return query;
}

Reformulator* Pdms::GetReformulator() {
  if (reformulator_ == nullptr ||
      reformulator_revision_ != network_.revision()) {
    reformulator_ = std::make_unique<Reformulator>(network_, options_);
    reformulator_revision_ = network_.revision();
  } else {
    reformulator_->set_options(options_);
  }
  return reformulator_.get();
}

ReformulationOptions Pdms::EffectiveOptions() {
  ReformulationOptions effective = options_;
  std::set<std::string> down = network_.UnavailableStoredRelations();
  effective.unavailable_stored.insert(down.begin(), down.end());
  effective.trace = trace_;
  effective.metrics = metrics_;
  effective.goal_memo = goal_memo_;
  effective.executor = Executor();
  return effective;
}

ReformulationOptions Pdms::PrepareCaches() {
  ReformulationOptions effective = EffectiveOptions();
  if (goal_memo_ == nullptr && plan_cache_ == nullptr) return effective;
  CacheScope scope;
  scope.network = &network_;
  scope.revision = network_.revision();
  scope.epoch = network_.availability_epoch();
  scope.unavailable_stored = effective.unavailable_stored;
  scope.allowed_stored = effective.allowed_stored;
  scope.options_fingerprint = OptionsFingerprint(effective);
  if (goal_memo_ != nullptr) {
    size_t dropped = goal_memo_->EnterScope(scope);
    if (dropped > 0 && metrics_ != nullptr) {
      metrics_->Add("cache.goal_memo_invalidations", dropped);
    }
  }
  if (plan_cache_ != nullptr) {
    size_t invalidated = plan_cache_->EnterScope(scope);
    if (invalidated > 0 && metrics_ != nullptr) {
      metrics_->Add("cache.invalidations", invalidated);
    }
  }
  return effective;
}

Result<ReformulationResult> Pdms::ReformulateCached(
    const ConjunctiveQuery& query, obs::ScopedSpan* query_span,
    bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  ReformulationOptions effective = PrepareCaches();
  if (plan_cache_ == nullptr) {
    return GetReformulator()->Reformulate(query, effective);
  }
  std::string key = CanonicalQueryKey(query);
  std::shared_ptr<const PlanCacheHook::Plan> hit;
  {
    obs::ScopedSpan lookup(trace_, "cache_lookup");
    hit = plan_cache_->Find(key);
    lookup.Set("result", hit != nullptr ? "hit" : "miss");
  }
  if (hit != nullptr) {
    if (metrics_ != nullptr) metrics_->Add("cache.hits");
    if (query_span != nullptr) query_span->Set("cache", "hit");
    if (cache_hit != nullptr) *cache_hit = true;
    ReformulationResult ref;
    ref.rewriting = hit->rewriting;
    ref.physical_slot = hit->physical;  // share the compiled physical plan
    ref.stats = hit->stats;  // the stats of the original reformulation
    // excluded_stored is a *global* report (every unavailable-but-admitted
    // relation, related to this query or not), so a flip of a relation
    // outside the plan's footprint legitimately leaves the entry cached
    // while moving the report. Recompute it from the current scope exactly
    // as a fresh Build would.
    ref.stats.excluded_stored.clear();
    for (const std::string& name : effective.unavailable_stored) {
      if (network_.IsStoredRelation(name) &&
          (effective.allowed_stored.empty() ||
           effective.allowed_stored.count(name) > 0)) {
        ref.stats.excluded_stored.push_back(name);
      }
    }
    return ref;
  }
  if (metrics_ != nullptr) metrics_->Add("cache.misses");
  if (query_span != nullptr) query_span->Set("cache", "miss");
  PDMS_ASSIGN_OR_RETURN(ReformulationResult ref,
                        GetReformulator()->Reformulate(query, effective));
  // Truncated plans are incomplete by budget, not by semantics — caching
  // one would freeze the truncation; let a later (perhaps less loaded)
  // query rebuild instead.
  if (!ref.stats.tree_truncated && !ref.stats.enumeration_truncated) {
    // The inserted entry and this query's result share one physical-plan
    // slot, so the plan the engine compiles below is already cached for
    // the next hit.
    ref.physical_slot = std::make_shared<qp::PhysicalPlanSlot>();
    PlanCacheHook::InsertOutcome outcome = plan_cache_->Insert(
        key, {ref.rewriting, ref.stats, ref.physical_slot},
        network_.revision(), network_.availability_epoch());
    if (metrics_ != nullptr) {
      if (outcome.stored) metrics_->Add("cache.inserts");
      if (outcome.dropped_stale) metrics_->Add("cache.inserts_dropped_stale");
      if (outcome.evictions > 0) {
        metrics_->Add("cache.evictions", outcome.evictions);
      }
    }
  }
  return ref;
}

Result<ReformulationResult> Pdms::Reformulate(const ConjunctiveQuery& query) {
  if (trace_ != nullptr) trace_->Clear();
  return ReformulateCached(query, nullptr);
}

Result<ReformulationResult> Pdms::Reformulate(std::string_view query_text) {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(query_text));
  return Reformulate(query);
}

Result<Relation> Pdms::Answer(const ConjunctiveQuery& query) {
  PDMS_ASSIGN_OR_RETURN(AnswerResult result, AnswerWithReport(query));
  return std::move(result.answers);
}

Result<Relation> Pdms::Answer(std::string_view query_text) {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(query_text));
  return Answer(query);
}

void FillDegradationReport(const PdmsNetwork& network,
                           const ReformulationStats& stats,
                           const std::vector<std::string>& failed_relations,
                           size_t rewritings_skipped,
                           const AccessStats& access, bool any_answers,
                           DegradationReport* report) {
  report->access = access;
  report->rewritings_skipped = rewritings_skipped;
  report->branches_pruned = stats.pruned_unavailable;

  // Excluded stored relations: catalog-unavailable ones the reformulator
  // pruned, plus those whose scans failed all retries at evaluation time.
  std::set<std::string> stored(stats.excluded_stored.begin(),
                               stats.excluded_stored.end());
  stored.insert(failed_relations.begin(), failed_relations.end());
  report->excluded_stored.assign(stored.begin(), stored.end());

  // Excluded peers: every peer serving an excluded relation, plus peers
  // marked down in the catalog.
  std::set<std::string> peers;
  for (const std::string& relation : stored) {
    auto peer = network.StoredRelationPeer(relation);
    if (peer.ok() && !peer->empty()) peers.insert(*peer);
  }
  for (const std::string& peer : network.UnavailablePeers()) {
    peers.insert(peer);
  }
  report->excluded_peers.assign(peers.begin(), peers.end());

  if (!report->degraded()) {
    report->completeness = Completeness::kComplete;
  } else if (any_answers) {
    report->completeness = Completeness::kPartial;
  } else {
    report->completeness = Completeness::kEmptyBecauseUnavailable;
  }
}

Result<AnswerResult> Pdms::AnswerWithReport(const ConjunctiveQuery& query) {
  AnswerResult out;
  out.answers = Relation(query.head().predicate(), query.head().arity());

  if (trace_ != nullptr) trace_->Clear();
  obs::ScopedSpan query_span(trace_, "query");
  query_span.Set("query", query.head().predicate());
  query_span.Set("mode", "local");

  // Step 1: reformulate with currently-unavailable sources pruned from
  // the rule-goal tree (recorded in the stats), via the plan cache when
  // one is attached. A cache hit skips reformulation entirely but still
  // evaluates below through the gated path.
  PDMS_ASSIGN_OR_RETURN(ReformulationResult ref,
                        ReformulateCached(query, &query_span,
                                          &out.plan_cache_hit));
  out.stats = ref.stats;

  // Step 2: evaluate, mediating every stored-relation scan through the
  // fault layer (retries with backoff, deadline, per-query caching).
  AccessController access(injector_.get(), retry_, deadline_,
                          [this](const std::string& relation) {
                            auto peer = network_.StoredRelationPeer(relation);
                            return peer.ok() ? *peer : std::string();
                          },
                          trace_, metrics_);
  size_t rewritings_skipped = 0;
  std::vector<std::string> failed;
  if (!ref.rewriting.empty()) {
    obs::ScopedSpan eval_span(trace_, "evaluate");
    eval_span.Set("disjuncts", static_cast<uint64_t>(ref.rewriting.size()));
    StoredGate gate = [&](const std::string& relation) {
      return access.Access(relation);
    };
    // Default: the vectorized engine (cost-based planned, columnar,
    // canonically ordered answers); the legacy tuple-at-a-time evaluator
    // stays available as the reference twin.
    DegradedEvalResult eval;
    if (options_.vectorized_eval) {
      PDMS_ASSIGN_OR_RETURN(
          eval, engine()->EvaluateUnionDegraded(
                    ref.rewriting, data_, gate, trace_, metrics_, Executor(),
                    ref.physical_slot.get()));
    } else {
      PDMS_ASSIGN_OR_RETURN(
          eval, EvaluateUnionDegraded(ref.rewriting, data_, gate, trace_,
                                      metrics_, Executor()));
    }
    out.answers = std::move(eval.answers);
    rewritings_skipped = eval.disjuncts_skipped;
    failed = std::move(eval.unavailable_relations);
    eval_span.Set("answers", static_cast<uint64_t>(out.answers.size()));
  }

  // Step 3: the degradation report.
  FillDegradationReport(network_, out.stats, failed, rewritings_skipped,
                        access.stats(), !out.answers.empty(),
                        &out.degradation);
  query_span.Set("answers", static_cast<uint64_t>(out.answers.size()));
  return out;
}

Result<AnswerResult> Pdms::AnswerWithReport(std::string_view query_text) {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(query_text));
  return AnswerWithReport(query);
}

Result<Relation> Pdms::AnswerStreaming(
    const ConjunctiveQuery& query,
    const std::function<bool(const Tuple&)>& on_answer) {
  Relation answers(query.head().predicate(), query.head().arity());
  if (trace_ != nullptr) trace_->Clear();
  obs::ScopedSpan query_span(trace_, "query");
  query_span.Set("query", query.head().predicate());
  query_span.Set("mode", "streaming");
  AccessController access(injector_.get(), retry_, deadline_,
                          [this](const std::string& relation) {
                            auto peer = network_.StoredRelationPeer(relation);
                            return peer.ok() ? *peer : std::string();
                          },
                          trace_, metrics_);
  Status eval_error = Status::Ok();
  auto eval_one = [&](const ConjunctiveQuery& rewriting) {
    auto part = EvaluateCQ(rewriting, data_, [&](const std::string& r) {
      return access.Access(r);
    }, trace_);
    if (!part.ok()) {
      // A rewriting over an unavailable source degrades the stream
      // (its answers are simply missing); other errors abort.
      if (part.status().code() == StatusCode::kUnavailable) return true;
      eval_error = part.status();
      return false;
    }
    for (const Tuple& t : part->tuples()) {
      if (answers.Insert(t) && !on_answer(t)) return false;
    }
    return true;
  };
  ReformulationOptions effective = PrepareCaches();
  if (plan_cache_ != nullptr) {
    std::string key = CanonicalQueryKey(query);
    std::shared_ptr<const PlanCacheHook::Plan> hit;
    {
      obs::ScopedSpan lookup(trace_, "cache_lookup");
      hit = plan_cache_->Find(key);
      lookup.Set("result", hit != nullptr ? "hit" : "miss");
    }
    if (hit != nullptr) {
      // Stream straight from the cached plan, disjunct by disjunct.
      if (metrics_ != nullptr) metrics_->Add("cache.hits");
      query_span.Set("cache", "hit");
      for (const ConjunctiveQuery& rewriting : hit->rewriting.disjuncts()) {
        if (!eval_one(rewriting)) break;
      }
      PDMS_RETURN_IF_ERROR(eval_error);
      query_span.Set("answers", static_cast<uint64_t>(answers.size()));
      return answers;
    }
    // A stopped stream leaves a partial plan, so the streaming miss path
    // never inserts; AnswerWithReport is the warming entry point.
    if (metrics_ != nullptr) metrics_->Add("cache.misses");
    query_span.Set("cache", "miss");
  }
  auto result = GetReformulator()->ReformulateStreaming(query, effective,
                                                        eval_one);
  PDMS_RETURN_IF_ERROR(eval_error);
  PDMS_RETURN_IF_ERROR(result.status());
  query_span.Set("answers", static_cast<uint64_t>(answers.size()));
  return answers;
}

Result<Relation> Pdms::CertainAnswersOracle(const ConjunctiveQuery& query,
                                            const ChaseOptions& chase) {
  return CertainAnswers(network_, data_, query, chase);
}

Result<std::vector<ConjunctiveQuery>> Pdms::ExplainAnswer(
    const ConjunctiveQuery& query, const Tuple& answer) {
  if (answer.size() != query.head().arity()) {
    return Status::InvalidArgument(
        StrFormat("answer arity %zu does not match query head arity %zu",
                  answer.size(), query.head().arity()));
  }
  PDMS_ASSIGN_OR_RETURN(ReformulationResult result, Reformulate(query));
  std::vector<ConjunctiveQuery> witnesses;
  for (const ConjunctiveQuery& rewriting : result.rewriting.disjuncts()) {
    // Specialize the rewriting's head to the answer tuple; a unification
    // failure (mismatching head constant) means this rewriting can never
    // produce the tuple.
    Substitution pin;
    bool compatible = true;
    for (size_t i = 0; i < answer.size(); ++i) {
      if (!pin.UnifyTerms(rewriting.head().args()[i],
                          Term::Constant(answer[i]))) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    ConjunctiveQuery specialized = pin.Apply(rewriting);
    PDMS_ASSIGN_OR_RETURN(Relation out, EvaluateCQ(specialized, data_));
    if (out.Contains(answer)) witnesses.push_back(rewriting);
  }
  return witnesses;
}

}  // namespace pdms
