#include "pdms/core/pdms.h"

#include "pdms/eval/evaluator.h"
#include "pdms/lang/parser.h"
#include "pdms/util/strings.h"

namespace pdms {

Pdms::Pdms(ReformulationOptions options) : options_(options) {}

Status Pdms::LoadProgram(std::string_view text) {
  reformulator_.reset();
  return ParsePplProgramInto(text, &network_, &data_);
}

PdmsNetwork* Pdms::mutable_network() {
  reformulator_.reset();
  return &network_;
}

Status Pdms::Insert(std::string_view stored_relation, Tuple tuple) {
  std::string name(stored_relation);
  if (!network_.IsStoredRelation(name)) {
    return Status::NotFound("not a stored relation: " + name);
  }
  PDMS_ASSIGN_OR_RETURN(size_t arity, network_.RelationArity(name));
  if (arity != tuple.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu does not match %s/%zu", tuple.size(),
                  name.c_str(), arity));
  }
  data_.Insert(name, std::move(tuple));
  return Status::Ok();
}

void Pdms::set_options(const ReformulationOptions& options) {
  options_ = options;
  if (reformulator_ != nullptr) reformulator_->set_options(options);
}

Result<ConjunctiveQuery> Pdms::ParseQuery(std::string_view text) const {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseRuleText(text));
  // Queries must range over peer relations (or stored relations directly).
  for (const Atom& a : query.body()) {
    if (!network_.IsPeerRelation(a.predicate()) &&
        !network_.IsStoredRelation(a.predicate())) {
      return Status::NotFound("query references unknown relation " +
                              a.predicate());
    }
    PDMS_ASSIGN_OR_RETURN(size_t arity,
                          network_.RelationArity(a.predicate()));
    if (arity != a.arity()) {
      return Status::InvalidArgument(
          StrFormat("query uses %s with arity %zu (declared %zu)",
                    a.predicate().c_str(), a.arity(), arity));
    }
  }
  return query;
}

Reformulator* Pdms::GetReformulator() {
  if (reformulator_ == nullptr) {
    reformulator_ = std::make_unique<Reformulator>(network_, options_);
  }
  return reformulator_.get();
}

Result<ReformulationResult> Pdms::Reformulate(const ConjunctiveQuery& query) {
  return GetReformulator()->Reformulate(query);
}

Result<ReformulationResult> Pdms::Reformulate(std::string_view query_text) {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(query_text));
  return Reformulate(query);
}

Result<Relation> Pdms::Answer(const ConjunctiveQuery& query) {
  PDMS_ASSIGN_OR_RETURN(ReformulationResult result, Reformulate(query));
  if (result.rewriting.empty()) {
    return Relation(query.head().predicate(), query.head().arity());
  }
  return EvaluateUnion(result.rewriting, data_);
}

Result<Relation> Pdms::Answer(std::string_view query_text) {
  PDMS_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(query_text));
  return Answer(query);
}

Result<Relation> Pdms::AnswerStreaming(
    const ConjunctiveQuery& query,
    const std::function<bool(const Tuple&)>& on_answer) {
  Relation answers(query.head().predicate(), query.head().arity());
  Status eval_error = Status::Ok();
  auto result = GetReformulator()->ReformulateStreaming(
      query, [&](const ConjunctiveQuery& rewriting) {
        auto part = EvaluateCQ(rewriting, data_);
        if (!part.ok()) {
          eval_error = part.status();
          return false;
        }
        for (const Tuple& t : part->tuples()) {
          if (answers.Insert(t) && !on_answer(t)) return false;
        }
        return true;
      });
  PDMS_RETURN_IF_ERROR(eval_error);
  PDMS_RETURN_IF_ERROR(result.status());
  return answers;
}

Result<Relation> Pdms::CertainAnswersOracle(const ConjunctiveQuery& query,
                                            const ChaseOptions& chase) {
  return CertainAnswers(network_, data_, query, chase);
}

Result<std::vector<ConjunctiveQuery>> Pdms::ExplainAnswer(
    const ConjunctiveQuery& query, const Tuple& answer) {
  if (answer.size() != query.head().arity()) {
    return Status::InvalidArgument(
        StrFormat("answer arity %zu does not match query head arity %zu",
                  answer.size(), query.head().arity()));
  }
  PDMS_ASSIGN_OR_RETURN(ReformulationResult result, Reformulate(query));
  std::vector<ConjunctiveQuery> witnesses;
  for (const ConjunctiveQuery& rewriting : result.rewriting.disjuncts()) {
    // Specialize the rewriting's head to the answer tuple; a unification
    // failure (mismatching head constant) means this rewriting can never
    // produce the tuple.
    Substitution pin;
    bool compatible = true;
    for (size_t i = 0; i < answer.size(); ++i) {
      if (!pin.UnifyTerms(rewriting.head().args()[i],
                          Term::Constant(answer[i]))) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    ConjunctiveQuery specialized = pin.Apply(rewriting);
    PDMS_ASSIGN_OR_RETURN(Relation out, EvaluateCQ(specialized, data_));
    if (out.Contains(answer)) witnesses.push_back(rewriting);
  }
  return witnesses;
}

}  // namespace pdms
