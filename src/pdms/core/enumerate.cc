#include "pdms/core/enumerate.h"

#include <map>
#include <set>
#include <unordered_set>

#include "pdms/lang/canonical.h"
#include "pdms/util/check.h"

namespace pdms {

namespace {

// A partially assembled solution: stored atoms gathered so far, the merged
// unifier of all chosen expansions, and the comparison predicates collected
// along the way (required ones filter answers; granted ones are facts the
// chosen views guarantee).
struct Partial {
  std::vector<Atom> atoms;
  Substitution sigma;
  std::vector<Comparison> required;
  std::vector<Comparison> granted;
};

using PartialSink = std::function<bool(const Partial&)>;

class Enumerator {
 public:
  Enumerator(const RuleGoalTree& tree, const ReformulationOptions& options,
             const WallTimer& timer, ReformulationStats* stats,
             const RewritingSink& sink)
      : tree_(tree),
        options_(options),
        timer_(timer),
        stats_(stats),
        sink_(sink) {}

  void Run() {
    if (tree_.root == nullptr || !tree_.root->viable) return;
    if (options_.memoize_solutions) {
      const std::vector<Partial>& finals = SolveExpansion(*tree_.root);
      for (const Partial& p : finals) {
        if (!EmitPartial(p)) break;
      }
      if (memo_exhausted_ && !stopped_) {
        // Materialization blew the partial cap (possibly before any
        // root-level solution completed). Fall back to the streaming
        // strategy so the caller still gets results; the canonical-key
        // dedup suppresses anything already emitted. The cap doubles as
        // the fallback's work bound — without it a tiny cap plus no other
        // budget would turn into an unbounded enumeration.
        size_t already = stats_->rewritings;
        Partial empty;
        StreamExpansion(*tree_.root, empty, [&](const Partial& p) {
          if (!EmitPartial(p)) return false;
          return stats_->rewritings - already < options_.max_memo_partials;
        });
      }
    } else {
      Partial empty;
      StreamExpansion(*tree_.root, empty,
                      [this](const Partial& p) { return EmitPartial(p); });
    }
  }

 private:
  bool Budget() {
    if (stopped_) return false;
    if (options_.time_budget_ms > 0 &&
        timer_.ElapsedMillis() > options_.time_budget_ms) {
      stats_->enumeration_truncated = true;
      stopped_ = true;
      return false;
    }
    return true;
  }

  // ---------- streaming depth-first strategy ----------

  // Extends `in` with the contribution of expansion `e` (its unifier,
  // constraints, and one solution of each covered child), passing each
  // result to `out`. Returns false to propagate a global stop.
  bool StreamExpansion(const ExpansionNode& e, const Partial& in,
                       const PartialSink& out) {
    if (!Budget()) return false;
    Partial p = in;
    if (!p.sigma.Merge(e.unifier)) return true;  // incompatible: skip
    for (const Comparison& c : e.required_constraints.comparisons()) {
      p.required.push_back(c);
    }
    for (const Comparison& c : e.granted_constraints.comparisons()) {
      p.granted.push_back(c);
    }
    return StreamCover(e, 0, p, out);
  }

  bool StreamCover(const ExpansionNode& e, uint64_t mask, const Partial& in,
                   const PartialSink& out) {
    if (!Budget()) return false;
    PDMS_CHECK(e.children.size() <= 64);
    uint64_t universe =
        e.children.empty()
            ? 0
            : (e.children.size() == 64
                   ? ~uint64_t{0}
                   : (uint64_t{1} << e.children.size()) - 1);
    if ((mask & universe) == universe) return out(in);
    size_t i = 0;
    while ((mask >> i) & 1) ++i;
    const GoalNode& child = *e.children[i];
    if (child.is_stored) {
      Partial p = in;
      p.atoms.push_back(child.label);
      return StreamCover(e, mask | (uint64_t{1} << i), p, out);
    }
    if (!child.viable) return true;  // dead end: this scope yields nothing
    for (const auto& exp : child.expansions) {
      if (!exp->viable) continue;
      uint64_t newmask = mask;
      if (exp->kind == ExpansionNode::Kind::kDefinitional) {
        newmask |= uint64_t{1} << i;
      } else {
        for (size_t u : exp->unc) newmask |= uint64_t{1} << u;
      }
      bool keep_going =
          StreamExpansion(*exp, in, [&](const Partial& p) {
            return StreamCover(e, newmask, p, out);
          });
      if (!keep_going) return false;
    }
    return true;
  }

  // ---------- memoized (dynamic programming) strategy ----------

  const std::vector<Partial>& SolveExpansion(const ExpansionNode& e) {
    auto it = memo_.find(&e);
    if (it != memo_.end()) return it->second;
    std::vector<Partial> solutions;
    Partial base;
    base.sigma = e.unifier;
    base.required = e.required_constraints.comparisons();
    base.granted = e.granted_constraints.comparisons();
    SolveCover(e, 0, base, &solutions);
    return memo_.emplace(&e, std::move(solutions)).first->second;
  }

  void SolveCover(const ExpansionNode& e, uint64_t mask, const Partial& in,
                  std::vector<Partial>* out) {
    if (memo_exhausted_ || !Budget()) return;
    // Materialization may spend at most half the time budget; the rest is
    // reserved for emitting (via the streaming fallback if necessary) so a
    // timeout never yields zero rewritings when some exist.
    if (options_.time_budget_ms > 0 &&
        timer_.ElapsedMillis() > 0.5 * options_.time_budget_ms) {
      stats_->enumeration_truncated = true;
      memo_exhausted_ = true;
      return;
    }
    PDMS_CHECK(e.children.size() <= 64);
    uint64_t universe =
        e.children.empty()
            ? 0
            : (e.children.size() == 64
                   ? ~uint64_t{0}
                   : (uint64_t{1} << e.children.size()) - 1);
    if ((mask & universe) == universe) {
      if (++memo_partials_ > options_.max_memo_partials) {
        // Stop materializing, but keep (and later emit) what was already
        // collected — the result is truncated, not empty.
        stats_->enumeration_truncated = true;
        memo_exhausted_ = true;
        return;
      }
      out->push_back(in);
      return;
    }
    size_t i = 0;
    while ((mask >> i) & 1) ++i;
    const GoalNode& child = *e.children[i];
    if (child.is_stored) {
      Partial p = in;
      p.atoms.push_back(child.label);
      SolveCover(e, mask | (uint64_t{1} << i), p, out);
      return;
    }
    if (!child.viable) return;
    for (const auto& exp : child.expansions) {
      if (!exp->viable) continue;
      uint64_t newmask = mask;
      if (exp->kind == ExpansionNode::Kind::kDefinitional) {
        newmask |= uint64_t{1} << i;
      } else {
        for (size_t u : exp->unc) newmask |= uint64_t{1} << u;
      }
      // Recursion before memo use would re-enter; SolveExpansion caches.
      const std::vector<Partial>& subs = SolveExpansion(*exp);
      for (const Partial& sub : subs) {
        Partial p = in;
        if (!p.sigma.Merge(sub.sigma)) continue;
        p.atoms.insert(p.atoms.end(), sub.atoms.begin(), sub.atoms.end());
        p.required.insert(p.required.end(), sub.required.begin(),
                          sub.required.end());
        p.granted.insert(p.granted.end(), sub.granted.begin(),
                         sub.granted.end());
        SolveCover(e, newmask, p, out);
        if (stopped_) return;
      }
    }
  }

  // ---------- assembly ----------

  // Turns a complete partial into a conjunctive rewriting; returns false to
  // stop the whole enumeration (budget hit or sink refused).
  bool EmitPartial(const Partial& p) {
    if (!Budget()) return false;
    const Substitution& sigma = p.sigma;
    Atom head = sigma.Apply(tree_.query.head());
    std::vector<Atom> atoms;
    atoms.reserve(p.atoms.size());
    std::unordered_set<std::string> available;
    for (const Atom& a : p.atoms) {
      Atom mapped = sigma.Apply(a);
      std::vector<std::string> vars;
      CollectVariables(mapped, &vars);
      available.insert(vars.begin(), vars.end());
      atoms.push_back(std::move(mapped));
    }
    // Safety: every head variable must survive into the stored atoms.
    for (const Term& t : head.args()) {
      if (t.is_variable() && available.count(t.var_name()) == 0) {
        ++stats_->combos_failed;
        return true;
      }
    }
    // Granted constraints (facts the chosen views guarantee).
    ConstraintSet granted;
    for (const Comparison& c : p.granted) granted.Add(sigma.Apply(c));
    // Required constraints: keep the expressible ones; the rest must be
    // implied by the granted facts, else the combination is unsound to
    // emit and is dropped.
    std::vector<Comparison> kept;
    for (const Comparison& c : p.required) {
      Comparison mapped = sigma.Apply(c);
      bool expressible = true;
      for (const Term* t : {&mapped.lhs, &mapped.rhs}) {
        if (t->is_variable() && available.count(t->var_name()) == 0) {
          expressible = false;
        }
      }
      if (expressible) {
        kept.push_back(std::move(mapped));
        continue;
      }
      if (!granted.Implies(mapped)) {
        ++stats_->combos_failed;
        return true;
      }
    }
    // The combination must be satisfiable together with the view facts.
    {
      ConstraintSet all = granted;
      for (const Comparison& c : kept) all.Add(c);
      if (!all.IsSatisfiable()) {
        ++stats_->combos_failed;
        return true;
      }
    }
    ConjunctiveQuery rewriting(std::move(head), std::move(atoms),
                               std::move(kept));
    if (!seen_.insert(CanonicalQueryKey(rewriting)).second) {
      // Syntactically-isomorphic to an already-emitted rewriting: dropping
      // it here means neither fresh nor cached plans ever evaluate the
      // same disjunct twice.
      ++stats_->duplicate_disjuncts;
      return true;
    }

    ++stats_->rewritings;
    stats_->time_to_rewriting_ms.push_back(timer_.ElapsedMillis());
    if (!sink_(rewriting)) {
      stopped_ = true;
      return false;
    }
    if (options_.max_rewritings != 0 &&
        stats_->rewritings >= options_.max_rewritings) {
      stats_->enumeration_truncated = true;
      stopped_ = true;
      return false;
    }
    return true;
  }

  const RuleGoalTree& tree_;
  const ReformulationOptions& options_;
  const WallTimer& timer_;
  ReformulationStats* stats_;
  const RewritingSink& sink_;
  bool stopped_ = false;
  size_t memo_partials_ = 0;
  bool memo_exhausted_ = false;
  std::set<std::string> seen_;
  std::map<const ExpansionNode*, std::vector<Partial>> memo_;
};

}  // namespace

Status EnumerateRewritings(const RuleGoalTree& tree,
                           const ReformulationOptions& options,
                           const WallTimer& timer,
                           ReformulationStats* stats,
                           const RewritingSink& sink) {
  if (tree.query.body().size() > 64) {
    return Status::Unsupported("more than 64 subgoals in one scope");
  }
  Enumerator enumerator(tree, options, timer, stats, sink);
  enumerator.Run();
  return Status::Ok();
}

}  // namespace pdms
