#include "pdms/core/normalize.h"

#include "pdms/util/strings.h"

namespace pdms {

namespace {

// True if `cq` is a bare atom: single body atom, no comparisons, and the
// head argument list is exactly the atom's argument list (no projection,
// permutation is fine because the head args are just re-listed terms —
// what matters is that the atom itself can serve as the view head).
bool IsBareAtom(const ConjunctiveQuery& cq) {
  if (cq.body().size() != 1 || !cq.comparisons().empty()) return false;
  return cq.head().args() == cq.body()[0].args();
}

// Adds the inclusion `lhs ⊆ rhs` in normalized form: a view whose head can
// stand for covered rhs subgoals, plus (unless lhs is a bare atom) the
// paired definitional rule producing the fresh view predicate from lhs.
void AddInclusion(const ConjunctiveQuery& lhs, const ConjunctiveQuery& rhs,
                  size_t description_id, size_t* fresh_counter,
                  ExpansionRules* out) {
  if (IsBareAtom(lhs)) {
    ExpansionRules::View v;
    v.view = ConjunctiveQuery(lhs.body()[0], rhs.body(), rhs.comparisons());
    v.description_id = description_id;
    out->views.push_back(std::move(v));
    return;
  }
  Atom v_head(StrFormat("_V%zu", (*fresh_counter)++), lhs.head().args());
  ExpansionRules::View v;
  v.view = ConjunctiveQuery(v_head, rhs.body(), rhs.comparisons());
  v.description_id = description_id;
  out->views.push_back(std::move(v));

  ExpansionRules::DefRule r;
  r.rule = Rule(v_head, lhs.body(), lhs.comparisons());
  r.description_id = description_id;
  r.guard_exempt = true;
  out->rules.push_back(std::move(r));
}

}  // namespace

ExpansionRules Normalize(const PdmsNetwork& network) {
  ExpansionRules out;
  size_t fresh_counter = 0;
  size_t description_id = 0;

  for (const std::string& name : network.StoredRelationNames()) {
    out.stored.insert(name);
  }

  // Storage descriptions: the stored atom is itself the view head, so an
  // MCD immediately produces a leaf.
  for (const StorageDescription& d : network.storage_descriptions()) {
    ExpansionRules::View v;
    v.view = d.view;
    v.description_id = description_id++;
    out.views.push_back(std::move(v));
  }

  for (const PeerMapping& m : network.peer_mappings()) {
    size_t id = description_id++;
    switch (m.kind) {
      case PeerMappingKind::kInclusion:
        AddInclusion(m.lhs, m.rhs, id, &fresh_counter, &out);
        break;
      case PeerMappingKind::kEquality:
        // Both directions share one description id, so a path uses the
        // equality at most once — this is what makes cyclic replication
        // mappings terminate (Section 3, "Cyclic PDMSs").
        AddInclusion(m.lhs, m.rhs, id, &fresh_counter, &out);
        AddInclusion(m.rhs, m.lhs, id, &fresh_counter, &out);
        break;
      case PeerMappingKind::kDefinitional: {
        ExpansionRules::DefRule r;
        r.rule = m.rule;
        r.description_id = id;
        out.rules.push_back(std::move(r));
        break;
      }
    }
  }
  out.num_descriptions = description_id;

  for (size_t i = 0; i < out.views.size(); ++i) {
    std::set<std::string> preds;
    for (const Atom& a : out.views[i].view.body()) {
      preds.insert(a.predicate());
    }
    for (const std::string& p : preds) {
      out.views_by_body_pred[p].push_back(i);
    }
  }
  for (size_t i = 0; i < out.rules.size(); ++i) {
    out.rules_by_head[out.rules[i].rule.head().predicate()].push_back(i);
  }
  return out;
}

std::string ExpansionRules::ToString() const {
  std::string out;
  for (const View& v : views) {
    out += StrFormat("view[d%zu]  %s  <=  ", v.description_id,
                     v.view.head().ToString().c_str());
    std::vector<std::string> parts;
    for (const Atom& a : v.view.body()) parts.push_back(a.ToString());
    for (const Comparison& c : v.view.comparisons()) {
      parts.push_back(c.ToString());
    }
    out += StrJoin(parts, ", ");
    out += "\n";
  }
  for (const DefRule& r : rules) {
    out += StrFormat("rule[d%zu%s]  %s\n", r.description_id,
                     r.guard_exempt ? ", exempt" : "",
                     r.rule.ToString().c_str());
  }
  return out;
}

}  // namespace pdms
