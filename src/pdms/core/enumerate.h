#ifndef PDMS_CORE_ENUMERATE_H_
#define PDMS_CORE_ENUMERATE_H_

#include <functional>

#include "pdms/core/rule_goal_tree.h"
#include "pdms/util/timer.h"

namespace pdms {

/// Called once per emitted conjunctive rewriting (over stored relations
/// only). Return false to stop enumeration early — this is how
/// first-k-rewritings measurements and rewriting caps are implemented.
using RewritingSink = std::function<bool(const ConjunctiveQuery&)>;

/// Step 3 of the reformulation algorithm: constructs the solutions from the
/// rule-goal tree. Walks the tree choosing one expansion per goal node such
/// that, at every rule node, the chosen expansions' `unc` sets cover all
/// children; merges the chosen expansions' unifiers (dropping conflicting
/// combinations); and assembles each successful combination into a
/// conjunctive query over stored relations, which is handed to `sink`.
///
/// Two strategies, selected by `options.memoize_solutions`:
///  - streaming depth-first (false): no materialization, first rewritings
///    arrive as fast as the leftmost viable path completes;
///  - memoized (true): per-expansion solution lists are computed once and
///    reused across sibling combinations — much faster when all rewritings
///    are wanted, at the cost of materialization.
///
/// `timer` supplies elapsed-time stamps (shared with the build phase so
/// reported times measure from query submission, as in Figure 4); stats
/// receives per-rewriting timestamps and truncation flags.
Status EnumerateRewritings(const RuleGoalTree& tree,
                           const ReformulationOptions& options,
                           const WallTimer& timer,
                           ReformulationStats* stats,
                           const RewritingSink& sink);

}  // namespace pdms

#endif  // PDMS_CORE_ENUMERATE_H_
