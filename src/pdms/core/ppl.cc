#include "pdms/core/ppl.h"

#include "pdms/util/strings.h"

namespace pdms {

namespace {

std::string BodyToString(const ConjunctiveQuery& cq) {
  std::vector<std::string> parts;
  parts.reserve(cq.body().size() + cq.comparisons().size());
  for (const Atom& a : cq.body()) parts.push_back(a.ToString());
  for (const Comparison& c : cq.comparisons()) parts.push_back(c.ToString());
  return StrJoin(parts, ", ");
}

}  // namespace

std::string StorageDescription::ToString() const {
  std::string out = "stored ";
  out += view.head().ToString();
  out += is_equality ? " = " : " <= ";
  out += BodyToString(view);
  out += ".";
  return out;
}

std::string PeerMapping::ToString() const {
  if (kind == PeerMappingKind::kDefinitional) {
    return "mapping " + rule.ToString();
  }
  std::string out = "mapping (";
  const auto& args = lhs.head().args();
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ") : ";
  out += BodyToString(lhs);
  out += (kind == PeerMappingKind::kEquality) ? " = " : " <= ";
  out += BodyToString(rhs);
  out += ".";
  return out;
}

std::string Peer::ToString() const {
  std::string out = "peer ";
  out += name;
  out += " {\n";
  for (const auto& [rel, arity] : relations) {
    out += StrFormat("  relation %s/%zu;\n", rel.c_str(), arity);
  }
  out += "}";
  return out;
}

std::string QualifiedName(const std::string& peer,
                          const std::string& relation) {
  return peer + ":" + relation;
}

}  // namespace pdms
