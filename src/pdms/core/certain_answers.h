#ifndef PDMS_CORE_CERTAIN_ANSWERS_H_
#define PDMS_CORE_CERTAIN_ANSWERS_H_

#include <vector>

#include "pdms/core/network.h"
#include "pdms/data/database.h"
#include "pdms/eval/chase.h"

namespace pdms {

/// Translates a PDMS specification into tuple-generating dependencies for
/// the chase-based certain-answer oracle:
///
///  - storage `R ⊆ Q` (and the sound direction of `R = Q`):
///      R(x̄) → ∃ȳ body(Q)
///  - peer inclusion `Q1 ⊆ Q2`:  body(Q1) → ∃ȳ body(Q2)
///  - peer equality: both directions;
///  - definitional `p :- body`:  body → p(x̄).
///
/// Comparison predicates are allowed on the premise side (they restrict
/// when the dependency fires) but not on the conclusion side, where they
/// would constrain invented nulls; descriptions with conclusion-side
/// comparisons are rejected with Unsupported.
Result<std::vector<Tgd>> NetworkToTgds(const PdmsNetwork& network);

/// Reference implementation of Definition 2.2: computes the certain answers
/// of `query` (posed over peer relations) given the stored-relation
/// instance `stored`, by chasing the instance into a universal solution and
/// evaluating the query over it, dropping null-containing tuples.
///
/// Exact on the Theorem 3.2.1 PTIME fragment (acyclic inclusions or
/// projection-free equalities, isolated definitional heads); the chase caps
/// surface non-terminating specifications as ResourceExhausted. Used by the
/// test suite as the ground truth the reformulation algorithm is checked
/// against.
Result<Relation> CertainAnswers(const PdmsNetwork& network,
                                const Database& stored,
                                const ConjunctiveQuery& query,
                                const ChaseOptions& options = {});

}  // namespace pdms

#endif  // PDMS_CORE_CERTAIN_ANSWERS_H_
