#ifndef PDMS_CORE_RULE_GOAL_TREE_H_
#define PDMS_CORE_RULE_GOAL_TREE_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pdms/constraints/constraint_set.h"
#include "pdms/core/normalize.h"
#include "pdms/lang/conjunctive_query.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/util/status.h"

namespace pdms {

class CostEstimator;
class GoalMemoHook;

namespace exec {
class ThreadPool;
}  // namespace exec

/// Tunables for tree construction and solution enumeration. The paper's
/// Section 4.3 optimizations each map to a flag so the ablation benchmarks
/// can toggle them individually.
struct ReformulationOptions {
  /// Prune expansions whose constraint label c(n) is unsatisfiable.
  bool prune_unsatisfiable = true;
  /// Precompute which predicates can possibly reach stored relations and
  /// refuse to expand goals that cannot ("detection of dead ends").
  bool prune_dead_ends = true;
  /// Order each goal's expansions so that cheap paths to stored relations
  /// come first (the paper's priority scheme); makes the first rewritings
  /// arrive early in the depth-first enumeration.
  bool order_expansions = true;
  /// Memoize per-expansion solution lists during enumeration (dynamic
  /// programming). Avoids re-enumerating right siblings per left partial,
  /// which pays off when all rewritings of a modest tree are wanted — but
  /// materializes every sub-solution, which is exponential in the worst
  /// case (bounded by max_memo_partials). The default streaming mode has
  /// no materialization cost and reaches the first rewritings fastest.
  bool memoize_solutions = false;
  /// Cap on materialized partial solutions in memoized mode; exceeding it
  /// marks the enumeration truncated.
  size_t max_memo_partials = 1u << 20;
  /// Minimize emitted rewritings and drop ones contained in others.
  bool remove_redundant = false;

  /// Restriction on data sources (Section 2: "when a peer submits a query,
  /// it may not always be interested in obtaining all possible data from
  /// anywhere in the PDMS ... restrictions on data sources can be
  /// specified"). When non-empty, only the listed stored relations may
  /// appear in rewritings; goals over other stored relations are treated
  /// as unanswerable.
  std::set<std::string> allowed_stored;

  /// Stored relations that are currently unreachable (down peers, failed
  /// sources). Like `allowed_stored` they are treated as unanswerable —
  /// branches that can only reach them are pruned — but exclusions are
  /// additionally reported in ReformulationStats::excluded_stored and
  /// counted in `pruned_unavailable`, so callers can tell a degraded
  /// rewriting from a complete one. Populated per query by the Pdms facade
  /// from the network's availability state.
  std::set<std::string> unavailable_stored;

  /// Budget: stop expanding once the tree holds this many nodes
  /// (goal + rule); the result is then sound but possibly incomplete.
  size_t max_tree_nodes = 5u * 1000 * 1000;
  /// Stop after this many rewritings (0 = unlimited).
  size_t max_rewritings = 0;
  /// Wall-clock budget for the whole reformulation in milliseconds
  /// (0 = unlimited).
  double time_budget_ms = 0;

  /// Cross-query goal memo (docs/plan_cache.md). Borrowed, nullable — null
  /// disables. Never part of the reformulation semantics: a memo hit
  /// rehydrates exactly the subtree a fresh expansion would have built
  /// (asserted by tests/goal_memo_test.cc and the coherence property
  /// test), it only skips re-deriving it.
  GoalMemoHook* goal_memo = nullptr;

  /// Observability (docs/observability.md). Borrowed, nullable — null is
  /// the zero-overhead sink — and never part of the reformulation
  /// semantics. When `trace` is set the builder emits one span per goal
  /// expansion (with prune-reason attributes mapping to the Section 4.3
  /// optimizations) and the enumerator marks each emitted rewriting; when
  /// `metrics` is set the per-query stats are folded into the registry.
  obs::TraceContext* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Parallelism (docs/parallel_execution.md). `threads` is the requested
  /// worker count for query answering; 1 (the default) keeps every code
  /// path serial and bit-for-bit identical to a build without an executor.
  /// `executor` is the shared work-stealing pool (borrowed, nullable) —
  /// the Pdms facade owns one and sets it here when threads > 1; builders
  /// given a null executor run serially whatever `threads` says. Parallel
  /// builds are deterministic across runs and thread counts (sibling goals
  /// and rule candidates become tasks with task-local state, merged in
  /// child-index order), but use per-task variable-name prefixes, so
  /// variable names — never answers, prune counts, rewriting order, or
  /// span structure — differ from a serial build's. Not part of the memo
  /// fingerprint for exactly that reason.
  size_t threads = 1;
  exec::ThreadPool* executor = nullptr;

  /// Evaluate rewritings through the vectorized engine (src/pdms/qp/):
  /// cost-based planned, columnar, hash-joined — with answers canonically
  /// sorted. False falls back to the legacy tuple-at-a-time evaluator,
  /// kept as a reference twin (answers agree after canonical ordering).
  /// An execution strategy, not a reformulation option: excluded from
  /// OptionsFingerprint like `threads`.
  bool vectorized_eval = true;

  /// Cost-aware routing (docs/network_cost_model.md). With a
  /// `cost_estimator` attached, `order_expansions` breaks depth ties by
  /// estimated network round-trip cost, so among equally-shallow paths the
  /// one reaching cheap (near, fast, healthy) stored relations is explored
  /// first. Distributed runtimes (SimPdms) additionally use the flag for
  /// cheapest-provider selection and relay-batched fan-out. Routing only —
  /// never changes the answer set — but it IS part of OptionsFingerprint
  /// (appended as "|c1" when set) because it reorders children, and memoized
  /// subtrees record child order.
  bool cost_aware = false;
  /// Borrowed, nullable — null leaves ordering purely depth-based even
  /// when `cost_aware` is set.
  const CostEstimator* cost_estimator = nullptr;
};

/// The dependency footprint of one reformulation (or one memoized goal
/// subtree): every predicate whose expansion candidates were consulted
/// while building the tree — including candidates that were pruned, since
/// consulting them shaped the result — and every description id that was
/// examined. Caches store the footprint with each entry so a catalog
/// change invalidates only the entries it can actually affect
/// (docs/churn_invalidation.md).
struct DepSet {
  /// Peer relations, stored relations, and normalization-introduced view
  /// predicates the build consulted.
  std::set<std::string> predicates;
  /// Description ids (storage + mapping, positional) of every candidate
  /// examined. Id-sensitive caches (the goal memo embeds ids in guard
  /// paths) drop entries whose ids were renumbered by a catalog edit.
  std::set<size_t> descriptions;

  void MergeFrom(const DepSet& other) {
    predicates.insert(other.predicates.begin(), other.predicates.end());
    descriptions.insert(other.descriptions.begin(), other.descriptions.end());
  }
  bool empty() const { return predicates.empty() && descriptions.empty(); }
};

/// Everything a cache needs to know about "now": identity of the catalog,
/// its counters, and the per-query source restrictions. The facade (and
/// SimPdms) builds one before each query and announces it to both cache
/// hooks, which consult the network's change log to invalidate exactly the
/// affected entries instead of clearing wholesale.
struct CacheScope {
  /// Borrowed for the duration of the EnterScope call; null disables
  /// dependency tracking (the cache then falls back to wholesale clearing
  /// on any revision/epoch change, which is always sound).
  const PdmsNetwork* network = nullptr;
  uint64_t revision = 0;
  uint64_t epoch = 0;
  /// Stored relations unusable for this query (network availability plus
  /// any caller-specified exclusions) and the caller's source allow-list;
  /// the analyzers need both to recompute reachability.
  std::set<std::string> unavailable_stored;
  std::set<std::string> allowed_stored;
  /// Structural options fingerprint (OptionsFingerprint); a change is a
  /// full reset — different prune flags build different trees.
  std::string options_fingerprint;
};

/// Counters reported by the reformulator; the Figure 3/4 benchmarks print
/// these directly.
struct ReformulationStats {
  size_t goal_nodes = 0;
  size_t rule_nodes = 0;  // expansion nodes (definitional + inclusion)
  size_t inclusion_nodes = 0;
  size_t definitional_nodes = 0;
  size_t pruned_unsat = 0;
  size_t pruned_dead = 0;
  size_t pruned_guard = 0;  // expansions skipped by the description reuse guard
  /// Goals pruned because they name a stored relation listed in
  /// ReformulationOptions::unavailable_stored.
  size_t pruned_unavailable = 0;
  /// The unavailable stored relations that would otherwise have been
  /// usable sources for this query's network (sorted).
  std::vector<std::string> excluded_stored;
  size_t combos_failed = 0;  // solution combinations dropped at assembly
  size_t rewritings = 0;
  /// Syntactically-isomorphic rewritings (equal CanonicalQueryKey) the
  /// enumerator dropped so the evaluator never runs a duplicate disjunct.
  size_t duplicate_disjuncts = 0;
  /// Cross-query goal memo (when ReformulationOptions::goal_memo is set):
  /// goals whose expansions were rehydrated from a previous query, and the
  /// total nodes that rehydration contributed (also included in the node
  /// counts above).
  size_t goal_memo_hits = 0;
  size_t goal_memo_nodes = 0;
  /// The build's dependency footprint (filled by the TreeBuilder; parallel
  /// tasks merge their private footprints in at join, so the set is
  /// schedule-independent).
  DepSet deps;
  bool tree_truncated = false;  // node budget hit
  bool enumeration_truncated = false;  // rewriting/time budget hit
  double build_ms = 0;
  double enumerate_ms = 0;
  /// Elapsed time (from reformulation start) at which the k-th rewriting
  /// was emitted.
  std::vector<double> time_to_rewriting_ms;

  size_t total_nodes() const { return goal_nodes + rule_nodes; }
  std::string ToString() const;
};

struct GoalNode;
struct ExpansionNode;

/// A detached, owned copy of one goal node's expansions — the unit the
/// cross-query goal memo (src/pdms/cache/goal_memo.h) stores between
/// queries. `label_args` remembers the template goal's argument terms so a
/// later query can rename the subtree onto its own goal atom (the two
/// atoms share a CanonicalAtomKey, so the argument patterns line up
/// positionally).
struct GoalSubtree {
  std::vector<Term> label_args;
  /// The template scope's interface arguments: MCD unifiers inside the
  /// subtree may bind view variables to the scope's distinguished
  /// variables, so rehydration maps these positionally onto the new
  /// scope's interface (the memo key proves the patterns coincide).
  std::vector<Term> iface_args;
  std::vector<std::unique_ptr<ExpansionNode>> expansions;
  // Node counts inside the subtree, charged against the tree budget and
  // the stats when the subtree is rehydrated.
  size_t goal_nodes = 0;
  size_t rule_nodes = 0;
  size_t definitional_nodes = 0;
  size_t inclusion_nodes = 0;
  /// Rough heap footprint, for the memo's byte budget.
  size_t byte_estimate = 0;
  /// Footprint of the stored expansion, including pruned candidates that a
  /// structural walk of `expansions` would miss; rehydration merges it
  /// into the consuming build's footprint.
  DepSet deps;
};

/// Cross-query memoization hook consulted by the TreeBuilder (implemented
/// in src/pdms/cache/goal_memo.h; core only sees the interface). The
/// facade announces the current CacheScope before each build; the
/// implementation digests the network's change log and invalidates the
/// entries whose dependency footprint the changes touch, so a stored
/// subtree can never leak across a mapping edit or availability flip —
/// while unrelated entries survive the churn.
class GoalMemoHook {
 public:
  virtual ~GoalMemoHook() = default;
  /// Declares the scope of the next Find/Store calls; returns the number
  /// of entries invalidated by the scope change.
  virtual size_t EnterScope(const CacheScope& scope) = 0;
  /// The stored subtree for `key`, or null. Shared ownership: parallel
  /// builders on different threads may hold a subtree while a concurrent
  /// store evicts its entry, so a raw "valid until the next call" pointer
  /// would be unsound.
  virtual std::shared_ptr<const GoalSubtree> Find(const std::string& key) = 0;
  virtual void Store(const std::string& key, GoalSubtree subtree) = 0;
};

/// A fingerprint of the option fields that shape the rule-goal tree (prune
/// flags, expansion ordering, the source allow-list). Part of the cache
/// scope: two builds may share cached state only when their fingerprints
/// agree, because these options change which expansions the builder keeps.
/// Availability (`unavailable_stored`) is deliberately NOT part of the
/// fingerprint — availability flips are catalog change events handled by
/// dependency-tracked invalidation, so entries untouched by a flip keep
/// hitting (docs/churn_invalidation.md).
std::string OptionsFingerprint(const ReformulationOptions& options);

/// A rule node: one way of expanding its parent goal node. Definitional
/// expansions (GAV-style) replace the goal with the body of a datalog rule;
/// inclusion expansions (LAV-style) replace the goal — and possibly some of
/// its sibling goals, recorded in `unc` — with a single view atom obtained
/// from an MCD.
struct ExpansionNode {
  enum class Kind { kDefinitional, kInclusion };

  Kind kind = Kind::kDefinitional;
  size_t description_id = 0;

  /// The most-general unifier of the goal label with the (fresh-renamed)
  /// rule head, or the MCD unifier. Applied when this expansion is chosen
  /// during solution construction.
  Substitution unifier;

  /// Comparison predicates this expansion *requires* (a definitional
  /// rule's body comparisons, θ-applied). They filter answers and must
  /// survive into the final rewriting.
  ConstraintSet required_constraints;

  /// Comparison predicates this expansion *grants* (an inclusion view's
  /// body comparisons): guaranteed true of any tuple the view supplies,
  /// used for satisfiability pruning and to discharge required
  /// constraints whose variables vanish.
  ConstraintSet granted_constraints;

  /// The constraint label c(n) of this rule node: parent label plus the
  /// constraints above, used to prune children.
  ConstraintSet label;

  /// Children goal nodes: the rule body's subgoals (definitional) or the
  /// single view atom (inclusion).
  std::vector<std::unique_ptr<GoalNode>> children;

  /// Inclusion only: indices (within the parent scope's children) of the
  /// sibling goals this MCD covers — the paper's `unc` label. Always
  /// contains the expanded goal's own index.
  std::vector<size_t> unc;

  bool viable = true;  // survives the structural dead-end pass
};

/// A goal node, labeled with an atom over a peer relation, a stored
/// relation (leaf), or a normalization-introduced view predicate.
struct GoalNode {
  Atom label;
  ConstraintSet constraints;  // c(n) projected onto this goal's variables
  bool is_stored = false;
  bool viable = false;
  size_t index_in_scope = 0;  // position among the parent's children
  std::vector<std::unique_ptr<ExpansionNode>> expansions;
};

/// The rule-goal tree for one query: the root expansion node is the query
/// rule itself (its children are the query's subgoals).
struct RuleGoalTree {
  ConjunctiveQuery query;
  std::unique_ptr<ExpansionNode> root;
  ReformulationStats stats;  // build-phase counters

  /// Multi-line indented dump (for debugging and the ppl_shell example).
  std::string ToString() const;
};

/// Builds the rule-goal tree for `query` (Step 2 of Section 4.2).
/// Termination in cyclic PDMSs comes from the per-path description-reuse
/// guard; the node budget in `options` bounds worst-case blowup.
class TreeBuilder {
 public:
  TreeBuilder(const ExpansionRules& rules, ReformulationOptions options);

  Result<RuleGoalTree> Build(const ConjunctiveQuery& query);

 private:
  struct ScopeContext {
    ExpansionNode* scope;
    Atom interface;  // head atom of this scope (distinguished variables)
  };

  /// Everything one build task mutates. The serial build threads a single
  /// TaskState through the whole recursion (so its behavior is the
  /// unchanged depth-first walk); a parallel build gives every fork unit —
  /// each sibling goal, each rule/view candidate — its own TaskState with
  /// a path-prefixed variable factory, a copy of the guard path, private
  /// stats, and a forked trace context, all merged back in child-index
  /// order after the join. Task-local state regardless of where the task
  /// ran is what makes the result independent of scheduling.
  struct TaskState {
    VariableFactory* fresh;
    std::set<size_t>* path;
    ReformulationStats* stats;
    /// Dependency recorder. Usually &stats->deps, but while a memoable
    /// goal expands it points at a local set so the subtree's footprint
    /// can be captured for the memo entry (then merged into the parent) —
    /// which is why joins merge deps explicitly rather than through
    /// MergeStatsCounters.
    DepSet* deps;
    obs::TraceContext* trace;  // may be null (tracing disabled)
    std::string prefix;        // the prefix `fresh` draws names from
  };

  void BuildScope(const ScopeContext& ctx, TaskState* ts);
  void ExpandGoal(const ScopeContext& ctx, GoalNode* goal, TaskState* ts);
  /// One definitional rule candidate: guard/budget/unification/prune
  /// checks, child goals, recursive BuildScope. Appends the surviving
  /// expansion to `*out`. Returns false when the node budget halted the
  /// expansion (the serial caller then abandons the goal, like the
  /// original single-loop code did).
  bool TryDefinitionalCandidate(const ScopeContext& ctx, GoalNode* goal,
                                const ExpansionRules::DefRule& dr,
                                TaskState* ts,
                                std::vector<std::unique_ptr<ExpansionNode>>* out);
  /// One inclusion view candidate (all of its MCDs). Same contract.
  bool TryInclusionCandidate(const ScopeContext& ctx, GoalNode* goal,
                             const ExpansionRules::View& vw,
                             const std::vector<Atom>& siblings,
                             const Atom& iface, TaskState* ts,
                             std::vector<std::unique_ptr<ExpansionNode>>* out);
  bool Answerable(const std::string& predicate) const;
  // True if `predicate` would be answerable were every source available —
  // i.e. its deadness is caused by unavailability, not by the topology.
  bool DeadOnlyByAvailability(const std::string& predicate) const;
  // True if `predicate` is a stored relation the caller allows rewritings
  // to use (honors ReformulationOptions::allowed_stored).
  bool IsUsableStored(const std::string& predicate) const;
  size_t DepthRank(const std::string& predicate) const;
  // Cross-query goal memo (options_.goal_memo). Memoization is restricted
  // to single-child scopes: an MCD may cover sibling goals, so a subtree
  // is positionally reusable only when the scope has no siblings. The key
  // captures everything expansion depends on besides the normalization —
  // the goal's atom pattern, the scope interface, the scope's constraint
  // label (unsatisfiability pruning consults it), and the path's
  // description-reuse guard set.
  std::string GoalMemoKey(const GoalNode& goal, const ScopeContext& ctx,
                          const std::set<size_t>& path) const;
  // Clones the stored subtree onto `goal`, mapping template label/interface
  // variables positionally and every other variable to a fresh one; false
  // if the node budget cannot absorb the subtree (the caller then expands
  // normally, truncating exactly as a memo-less build would).
  bool RehydrateGoalSubtree(const GoalSubtree& subtree,
                            const ScopeContext& ctx, GoalNode* goal,
                            TaskState* ts);
  void StoreGoalSubtree(const std::string& key, const ScopeContext& ctx,
                        const GoalNode& goal, const DepSet& deps);
  void ComputeReachability();
  void FillReachability(bool ignore_unavailable,
                        std::map<std::string, size_t>* out);
  void MarkViability(ExpansionNode* scope);
  /// True when sibling goals / candidates should fork as pool tasks.
  bool Parallel() const;

  const ExpansionRules& rules_;
  ReformulationOptions options_;
  VariableFactory fresh_{"_t"};
  // The tree budget is global across build tasks: a relaxed atomic counter
  // (exact totals matter, per-increment ordering does not). In a parallel
  // build the exact point where the budget binds can differ from a serial
  // build's — truncated trees are never cached or memoized, so this never
  // leaks across queries.
  std::atomic<size_t> node_count_{0};
  std::atomic<bool> truncated_{false};
  // predicate -> minimal #expansion-levels to reach stored relations;
  // absent = unanswerable.
  std::map<std::string, size_t> reach_depth_;
  // Same fixpoint computed as if every source were available, used to
  // attribute dead ends to unavailability in the stats.
  std::map<std::string, size_t> reach_structural_;
};

}  // namespace pdms

#endif  // PDMS_CORE_RULE_GOAL_TREE_H_
