#ifndef PDMS_SERVE_WIRE_H_
#define PDMS_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/obs/trace.h"
#include "pdms/sim/message.h"
#include "pdms/util/status.h"

namespace pdms {
namespace serve {
namespace wire {

/// The networked serving protocol: length-prefixed binary frames over TCP.
/// This is the simulated runtime's Message framing (sim/message.h) promoted
/// to a real wire format — the scan request/response shapes are carried
/// verbatim as frame types, and the serving front-end adds query/answer/
/// shed frames on top.
///
/// Every frame is
///
///   magic       4 bytes   "PDMS"
///   version     u8        kVersion (1) or kVersionTraced (2)
///   type        u8        FrameType
///   flags       u16       version 1: must be 0 (the original reserved
///                         field); version 2: exactly kFlagTrace
///   payload_len u32       <= Limits::max_payload_bytes
///   checksum    u32       FNV-1a over the payload bytes
///   payload     payload_len bytes
///
/// all little-endian. Encode/decode are pure functions of bytes — no
/// sockets, no clocks — so the codec is directly fuzzable
/// (tests/wire_test.cc mutates valid frames and asserts the decoder can
/// only ever return an error, never crash or over-allocate).
///
/// Version negotiation (docs/serving_telemetry.md): encoders emit version
/// 1 unless the frame carries a trace extension, and a server always
/// answers in the version of the request it is answering. A version-1-only
/// client therefore round-trips against a version-2 server byte-for-byte
/// as before, and a version-2 client only receives spans it asked for.
/// The trace extension is a payload *prefix* gated by kFlagTrace:
///
///   kQuery / kScanRequest   TraceEnvelope  (caller's trace id + span id)
///   kAnswer / kScanResponse SpanBlock      (the server's spans, to graft
///                                           under the caller's context)
///
/// Other frame types never carry the flag; the reader rejects it there.
///
/// Hardening invariants the decoder maintains:
///  - nothing is allocated from attacker-controlled counts: a declared
///    string length, tuple count, or arity is validated against the bytes
///    actually remaining in the frame before any storage is sized;
///  - arity is capped at sim::kMaxMessageArity, and a declared tuple
///    count whose minimum encoding exceeds the remaining payload is
///    rejected up front;
///  - a frame whose header declares more than max_payload_bytes is
///    rejected at header-parse time, before the payload is buffered.

inline constexpr uint8_t kVersion = 1;
/// The traced protocol revision: the flags field is live and kFlagTrace
/// prefixes the payload with a trace extension. A version-2 frame MUST
/// carry kFlagTrace (a traceless frame is encoded as version 1), which
/// keeps decode∘encode the identity on every valid frame.
inline constexpr uint8_t kVersionTraced = 2;
inline constexpr uint16_t kFlagTrace = 0x1;
inline constexpr size_t kHeaderBytes = 16;
inline constexpr char kMagic[4] = {'P', 'D', 'M', 'S'};
/// Smallest possible encoding of one Value (empty string: kind + u32 len).
inline constexpr size_t kMinValueBytes = 5;

/// Decode-side resource caps. The defaults fit the serving workloads;
/// both ends of a connection must agree on max_payload_bytes (an encoder
/// may legitimately produce what the peer's decoder would refuse).
struct Limits {
  size_t max_payload_bytes = 4u << 20;  // 4 MiB hard frame cap
  size_t max_string_bytes = 1u << 20;   // single string cap inside a frame
};

enum class FrameType : uint8_t {
  kQuery = 1,         // client -> server: answer this query
  kAnswer = 2,        // server -> client: answers + degradation summary
  kShed = 3,          // server -> client: rejected by admission control
  kPing = 4,          // liveness probe
  kPong = 5,
  kScanRequest = 6,   // sim::Message::Type::kScanRequest on the wire
  kScanResponse = 7,  // sim::Message::Type::kScanResponse on the wire
  kStatsRequest = 8,  // client -> server: send a stats snapshot
  kStatsResponse = 9, // server -> client: JSON stats snapshot
};

const char* FrameTypeName(FrameType type);

/// A decoded frame: validated header + raw payload, ready for the typed
/// Decode* functions below.
struct Frame {
  FrameType type = FrameType::kPing;
  uint8_t version = kVersion;
  uint16_t flags = 0;
  std::string payload;
};

/// The request half of the trace extension: the caller's trace id and the
/// span under which the server's spans should be grafted. Crossing the TCP
/// boundary with this is what makes a single cross-process Chrome trace of
/// a federated request possible.
struct TraceEnvelope {
  std::string trace_id;
  obs::SpanId parent_span = obs::kNoSpan;
};

/// The response half: the spans the server recorded while serving this
/// request, in its own (dense, 1-based) id space and on its own clock.
/// The client re-maps ids and shifts timestamps when grafting
/// (obs::TraceContext::ImportSpans).
struct SpanBlock {
  std::string trace_id;
  std::vector<obs::Span> spans;
};

/// client -> server. `budget_ms <= 0` means "no deadline" on the wire;
/// a positive budget becomes a server-side Deadline the moment the frame
/// is admitted (docs/serving.md, deadline propagation contract).
struct QueryFrame {
  uint64_t request_id = 0;
  double budget_ms = 0;
  std::string query;
  /// Present iff the frame was (or should be) encoded as version 2 with
  /// kFlagTrace.
  std::optional<TraceEnvelope> trace;
};

enum class ShedReason : uint8_t {
  kQueueFull = 1,  // bounded admission queue at capacity
  kDeadline = 2,   // remaining budget cannot cover the expected wait
};

const char* ShedReasonName(ShedReason reason);

/// server -> client when admission control rejects a request. Always
/// carries a positive retry_after_ms hint derived from the queue's EWMA
/// service time.
struct ShedFrame {
  uint64_t request_id = 0;
  ShedReason reason = ShedReason::kQueueFull;
  double retry_after_ms = 0;
  uint32_t queue_depth = 0;
  std::string message;
};

/// server -> client: the query's outcome. On a non-OK status the answer
/// section is empty; on success it carries the full answer relation plus
/// the degradation summary, so a deadline that expired mid-query yields a
/// well-formed partial answer (completeness != kComplete) instead of a
/// hung or dropped connection.
struct AnswerFrame {
  uint64_t request_id = 0;
  uint32_t status_code = 0;  // pdms::StatusCode
  std::string status_message;
  uint8_t completeness = 0;  // pdms::Completeness
  /// Truncation bits: the server's deadline expired mid-query and the
  /// reformulation budget cut enumeration (kTruncatedEnumeration) or tree
  /// growth (kTruncatedTree) short. The answer is still sound — every
  /// tuple is a certain answer — just possibly fewer of them.
  uint8_t truncated = 0;
  static constexpr uint8_t kTruncatedTree = 1;
  static constexpr uint8_t kTruncatedEnumeration = 2;
  uint64_t rewritings_skipped = 0;
  uint64_t branches_pruned = 0;
  double server_ms = 0;  // service time as measured by the server
  std::vector<std::string> excluded_peers;
  std::vector<std::string> excluded_stored;
  std::string relation_name;
  uint32_t arity = 0;
  std::vector<Tuple> tuples;
  /// The server's spans for this request (version-2 answers only; present
  /// iff the query carried a TraceEnvelope).
  std::optional<SpanBlock> spans;

  /// Reconstructs the pdms::Status carried by status_code/status_message.
  Status status() const;
  /// Rebuilds the answer relation (tuples in wire order, which the server
  /// guarantees is the evaluation order — byte-identical ToString to the
  /// in-process answer).
  Relation ToRelation() const;
};

/// A scan frame plus its optional trace extension. The sim::Message body
/// is carried verbatim (the promoted sim framing); `trace` rides on
/// requests, `spans` on responses — federated kScanRequest hops forward
/// the caller's envelope and graft the remote spans on the way back.
struct ScanFrame {
  sim::Message message;
  std::optional<TraceEnvelope> trace;  // kScanRequest only
  std::optional<SpanBlock> spans;      // kScanResponse only
};

/// client -> server: ask for the live stats snapshot (docs/
/// serving_telemetry.md). The response's `json` is the server-assembled
/// snapshot: rolling SLO windows, metrics registry, admission state, and
/// per-peer remote-scan health.
struct StatsRequestFrame {
  uint64_t request_id = 0;
};

struct StatsResponseFrame {
  uint64_t request_id = 0;
  std::string json;
};

// --- Encoding (pure; never fails for well-formed inputs) ---

/// Wraps an already-encoded payload in a checksummed header. The
/// two-argument form emits version 1 with zero flags (the pre-telemetry
/// encoding, byte-identical to it); the four-argument form stamps an
/// explicit version/flags pair.
std::string EncodeFrame(FrameType type, std::string_view payload);
std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint8_t version, uint16_t flags);

std::string EncodeQuery(const QueryFrame& frame);
std::string EncodeAnswer(const AnswerFrame& frame);
std::string EncodeShed(const ShedFrame& frame);
std::string EncodePing(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
/// Frames a simulated-runtime scan message (message.type selects
/// kScanRequest or kScanResponse) without a trace extension.
std::string EncodeScan(const sim::Message& message);
/// Frames a scan with its optional trace extension.
std::string EncodeScanFrame(const ScanFrame& frame);
std::string EncodeStatsRequest(uint64_t request_id);
std::string EncodeStatsResponse(const StatsResponseFrame& frame);

// --- Decoding (pure; total over arbitrary bytes) ---

Result<QueryFrame> DecodeQuery(const Frame& frame, const Limits& limits = {});
Result<AnswerFrame> DecodeAnswer(const Frame& frame,
                                 const Limits& limits = {});
Result<ShedFrame> DecodeShed(const Frame& frame, const Limits& limits = {});
Result<uint64_t> DecodePing(const Frame& frame);
/// Decodes either scan frame type back into a sim::Message (validated via
/// Message::Validate, the bound shared with the simulated bus), dropping
/// any trace extension.
Result<sim::Message> DecodeScan(const Frame& frame,
                                const Limits& limits = {});
/// Decodes either scan frame type with its trace extension.
Result<ScanFrame> DecodeScanFrame(const Frame& frame,
                                  const Limits& limits = {});
Result<StatsRequestFrame> DecodeStatsRequest(const Frame& frame);
Result<StatsResponseFrame> DecodeStatsResponse(const Frame& frame,
                                               const Limits& limits = {});

/// Decodes whatever typed frame `frame` holds and re-encodes it; used by
/// the fuzz harness to assert decode∘encode is the identity on valid
/// frames and *total* (error, never crash) on mutated ones.
Result<std::string> ReencodeFrame(const Frame& frame,
                                  const Limits& limits = {});

/// Incremental frame assembler for a byte stream: feed arbitrarily-sized
/// chunks with Append, pop complete frames with Next. Header validation
/// (magic, version, declared size against the cap, checksum) happens in
/// Next; the first malformed header or checksum mismatch poisons the
/// reader — the connection layer closes the socket, so there is no resync
/// protocol.
class FrameReader {
 public:
  explicit FrameReader(Limits limits = {}) : limits_(limits) {}

  void Append(const char* data, size_t len) {
    buffer_.append(data, len);
  }
  void Append(std::string_view data) { buffer_.append(data); }

  /// True and fills `*out` when a complete frame was buffered; false when
  /// more bytes are needed; an error (permanently) on malformed input.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next — a partially-received
  /// frame. The connection layer bounds this (it can never exceed
  /// kHeaderBytes + max_payload_bytes) and applies the slow-loris read
  /// deadline whenever it is non-zero.
  size_t buffered() const { return buffer_.size() - consumed_; }
  bool has_partial() const { return buffered() > 0; }
  bool failed() const { return failed_; }

 private:
  Limits limits_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
};

}  // namespace wire
}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_WIRE_H_
