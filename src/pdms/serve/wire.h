#ifndef PDMS_SERVE_WIRE_H_
#define PDMS_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pdms/data/relation.h"
#include "pdms/sim/message.h"
#include "pdms/util/status.h"

namespace pdms {
namespace serve {
namespace wire {

/// The networked serving protocol: length-prefixed binary frames over TCP.
/// This is the simulated runtime's Message framing (sim/message.h) promoted
/// to a real wire format — the scan request/response shapes are carried
/// verbatim as frame types, and the serving front-end adds query/answer/
/// shed frames on top.
///
/// Every frame is
///
///   magic       4 bytes   "PDMS"
///   version     u8        kVersion
///   type        u8        FrameType
///   reserved    u16       must be 0
///   payload_len u32       <= Limits::max_payload_bytes
///   checksum    u32       FNV-1a over the payload bytes
///   payload     payload_len bytes
///
/// all little-endian. Encode/decode are pure functions of bytes — no
/// sockets, no clocks — so the codec is directly fuzzable
/// (tests/wire_test.cc mutates valid frames and asserts the decoder can
/// only ever return an error, never crash or over-allocate).
///
/// Hardening invariants the decoder maintains:
///  - nothing is allocated from attacker-controlled counts: a declared
///    string length, tuple count, or arity is validated against the bytes
///    actually remaining in the frame before any storage is sized;
///  - arity is capped at sim::kMaxMessageArity, and a declared tuple
///    count whose minimum encoding exceeds the remaining payload is
///    rejected up front;
///  - a frame whose header declares more than max_payload_bytes is
///    rejected at header-parse time, before the payload is buffered.

inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 16;
inline constexpr char kMagic[4] = {'P', 'D', 'M', 'S'};
/// Smallest possible encoding of one Value (empty string: kind + u32 len).
inline constexpr size_t kMinValueBytes = 5;

/// Decode-side resource caps. The defaults fit the serving workloads;
/// both ends of a connection must agree on max_payload_bytes (an encoder
/// may legitimately produce what the peer's decoder would refuse).
struct Limits {
  size_t max_payload_bytes = 4u << 20;  // 4 MiB hard frame cap
  size_t max_string_bytes = 1u << 20;   // single string cap inside a frame
};

enum class FrameType : uint8_t {
  kQuery = 1,         // client -> server: answer this query
  kAnswer = 2,        // server -> client: answers + degradation summary
  kShed = 3,          // server -> client: rejected by admission control
  kPing = 4,          // liveness probe
  kPong = 5,
  kScanRequest = 6,   // sim::Message::Type::kScanRequest on the wire
  kScanResponse = 7,  // sim::Message::Type::kScanResponse on the wire
};

const char* FrameTypeName(FrameType type);

/// A decoded frame: validated header + raw payload, ready for the typed
/// Decode* functions below.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// client -> server. `budget_ms <= 0` means "no deadline" on the wire;
/// a positive budget becomes a server-side Deadline the moment the frame
/// is admitted (docs/serving.md, deadline propagation contract).
struct QueryFrame {
  uint64_t request_id = 0;
  double budget_ms = 0;
  std::string query;
};

enum class ShedReason : uint8_t {
  kQueueFull = 1,  // bounded admission queue at capacity
  kDeadline = 2,   // remaining budget cannot cover the expected wait
};

const char* ShedReasonName(ShedReason reason);

/// server -> client when admission control rejects a request. Always
/// carries a positive retry_after_ms hint derived from the queue's EWMA
/// service time.
struct ShedFrame {
  uint64_t request_id = 0;
  ShedReason reason = ShedReason::kQueueFull;
  double retry_after_ms = 0;
  uint32_t queue_depth = 0;
  std::string message;
};

/// server -> client: the query's outcome. On a non-OK status the answer
/// section is empty; on success it carries the full answer relation plus
/// the degradation summary, so a deadline that expired mid-query yields a
/// well-formed partial answer (completeness != kComplete) instead of a
/// hung or dropped connection.
struct AnswerFrame {
  uint64_t request_id = 0;
  uint32_t status_code = 0;  // pdms::StatusCode
  std::string status_message;
  uint8_t completeness = 0;  // pdms::Completeness
  /// Truncation bits: the server's deadline expired mid-query and the
  /// reformulation budget cut enumeration (kTruncatedEnumeration) or tree
  /// growth (kTruncatedTree) short. The answer is still sound — every
  /// tuple is a certain answer — just possibly fewer of them.
  uint8_t truncated = 0;
  static constexpr uint8_t kTruncatedTree = 1;
  static constexpr uint8_t kTruncatedEnumeration = 2;
  uint64_t rewritings_skipped = 0;
  uint64_t branches_pruned = 0;
  double server_ms = 0;  // service time as measured by the server
  std::vector<std::string> excluded_peers;
  std::vector<std::string> excluded_stored;
  std::string relation_name;
  uint32_t arity = 0;
  std::vector<Tuple> tuples;

  /// Reconstructs the pdms::Status carried by status_code/status_message.
  Status status() const;
  /// Rebuilds the answer relation (tuples in wire order, which the server
  /// guarantees is the evaluation order — byte-identical ToString to the
  /// in-process answer).
  Relation ToRelation() const;
};

// --- Encoding (pure; never fails for well-formed inputs) ---

/// Wraps an already-encoded payload in a checksummed header.
std::string EncodeFrame(FrameType type, std::string_view payload);

std::string EncodeQuery(const QueryFrame& frame);
std::string EncodeAnswer(const AnswerFrame& frame);
std::string EncodeShed(const ShedFrame& frame);
std::string EncodePing(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
/// Frames a simulated-runtime scan message (message.type selects
/// kScanRequest or kScanResponse).
std::string EncodeScan(const sim::Message& message);

// --- Decoding (pure; total over arbitrary bytes) ---

Result<QueryFrame> DecodeQuery(const Frame& frame, const Limits& limits = {});
Result<AnswerFrame> DecodeAnswer(const Frame& frame,
                                 const Limits& limits = {});
Result<ShedFrame> DecodeShed(const Frame& frame, const Limits& limits = {});
Result<uint64_t> DecodePing(const Frame& frame);
/// Decodes either scan frame type back into a sim::Message (validated via
/// Message::Validate, the bound shared with the simulated bus).
Result<sim::Message> DecodeScan(const Frame& frame,
                                const Limits& limits = {});

/// Decodes whatever typed frame `frame` holds and re-encodes it; used by
/// the fuzz harness to assert decode∘encode is the identity on valid
/// frames and *total* (error, never crash) on mutated ones.
Result<std::string> ReencodeFrame(const Frame& frame,
                                  const Limits& limits = {});

/// Incremental frame assembler for a byte stream: feed arbitrarily-sized
/// chunks with Append, pop complete frames with Next. Header validation
/// (magic, version, declared size against the cap, checksum) happens in
/// Next; the first malformed header or checksum mismatch poisons the
/// reader — the connection layer closes the socket, so there is no resync
/// protocol.
class FrameReader {
 public:
  explicit FrameReader(Limits limits = {}) : limits_(limits) {}

  void Append(const char* data, size_t len) {
    buffer_.append(data, len);
  }
  void Append(std::string_view data) { buffer_.append(data); }

  /// True and fills `*out` when a complete frame was buffered; false when
  /// more bytes are needed; an error (permanently) on malformed input.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next — a partially-received
  /// frame. The connection layer bounds this (it can never exceed
  /// kHeaderBytes + max_payload_bytes) and applies the slow-loris read
  /// deadline whenever it is non-zero.
  size_t buffered() const { return buffer_.size() - consumed_; }
  bool has_partial() const { return buffered() > 0; }
  bool failed() const { return failed_; }

 private:
  Limits limits_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool failed_ = false;
};

}  // namespace wire
}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_WIRE_H_
