#ifndef PDMS_SERVE_ACCESS_LOG_H_
#define PDMS_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "pdms/util/status.h"

namespace pdms {
namespace serve {

/// Tunables for the structured access log (docs/serving_telemetry.md).
struct AccessLogOptions {
  std::string path;
  /// Size-based rotation: when the live file exceeds this after an
  /// append, it is renamed to `<path>.1` (replacing any previous one)
  /// and a fresh file is started — at most two files ever exist.
  size_t rotate_bytes = 8u << 20;
};

/// One serving decision, shed or answered. Encoded as a single NDJSON
/// line so the log is greppable and machine-parseable line by line.
struct AccessEntry {
  double ts_ms = 0;        ///< server wall-clock, ms since the epoch
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  std::string query;       ///< canonical form when parseable, else raw
  double deadline_ms = 0;  ///< client budget (0 = none)
  double queue_ms = 0;     ///< admission to dequeue
  double exec_ms = 0;      ///< facade evaluation (0 when shed)
  double total_ms = 0;     ///< admission to completion
  std::string shed;        ///< empty = answered; else the shed reason
  bool cache_hit = false;
  int verdict = -1;        ///< pdms::Completeness; -1 when shed/error
  std::string trace_id;    ///< empty for untraced requests

  std::string ToJson() const;
};

/// An append-only NDJSON access log with size-based rotation. Writes are
/// serialized under a mutex and flushed per line (a crash loses at most
/// the line being written) — the serving hot path takes one lock, one
/// format, one buffered write. Passed around as a nullable borrowed
/// pointer, like the metrics registry: null is the zero-overhead sink.
///
/// Thread-safe.
class AccessLog {
 public:
  /// Opens (appending) the log file; fails if it cannot be created.
  static Result<std::unique_ptr<AccessLog>> Open(AccessLogOptions options);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  void Append(const AccessEntry& entry);
  /// Flushes buffered bytes to the OS (called on graceful shutdown).
  void Flush();

  const std::string& path() const { return options_.path; }
  uint64_t lines_written() const;
  uint64_t rotations() const;

  /// Wall-clock now in ms since the Unix epoch (the `ts_ms` timebase).
  static double WallMs();

 private:
  explicit AccessLog(AccessLogOptions options) : options_(options) {}
  void RotateLocked();

  AccessLogOptions options_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  size_t bytes_ = 0;
  uint64_t lines_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_ACCESS_LOG_H_
