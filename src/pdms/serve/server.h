#ifndef PDMS_SERVE_SERVER_H_
#define PDMS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pdms/core/pdms.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/serve/executor.h"
#include "pdms/serve/wire.h"

namespace pdms {
namespace serve {

/// Tunables for the networked front-end (docs/serving.md).
struct ServerOptions {
  /// TCP port to bind; 0 picks an ephemeral port (read it back via
  /// `port()` after Start).
  uint16_t port = 0;
  /// Bind address. The default serves loopback only; bind 0.0.0.0
  /// explicitly to expose the server.
  std::string bind_address = "127.0.0.1";
  ExecutorOptions executor;
  /// Decode-side frame caps, shared by every connection.
  wire::Limits limits;
  /// Slow-loris guard: a connection holding a *partial* frame for longer
  /// than this is closed (`serve.read_timeouts`). Idle connections with no
  /// partial frame are not affected.
  double read_deadline_ms = 5000;
  /// A connection whose outbound buffer exceeds this (a consumer reading
  /// slower than it queries) is closed (`serve.slow_consumer_closed`).
  size_t max_write_buffer_bytes = 8u << 20;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 64;
};

/// The networked serving front-end: a single poll-based event-loop thread
/// owns every socket (accept, read, frame assembly, write-buffer flush)
/// and hands admitted query frames to a RequestExecutor, whose workers
/// push completions back through a self-pipe. No connection ever blocks
/// the loop: sockets are non-blocking, reads assemble frames
/// incrementally through wire::FrameReader, and writes buffer (bounded)
/// until POLLOUT.
///
/// Robustness contract (tests/serve_overload_test.cc): malformed frames,
/// oversized payloads, truncated writes, slow-loris clients, and
/// mid-request disconnects each close at most their own connection —
/// counted in the registry, observable per connection via a detached
/// trace span — and never take down the server or corrupt another
/// connection's stream.
class PplServer {
 public:
  PplServer(ServerOptions options, obs::MetricsRegistry* metrics = nullptr,
            obs::TraceContext* trace = nullptr);
  ~PplServer();

  PplServer(const PplServer&) = delete;
  PplServer& operator=(const PplServer&) = delete;

  /// Binds, starts the executor over copies of `network`/`data`, and
  /// spawns the loop thread.
  Status Start(const PdmsNetwork& network, const Database& data);

  /// Stops accepting, drains in-flight requests, joins the loop thread,
  /// and closes every connection. Idempotent.
  void Stop();

  /// The bound port (valid after Start; resolves port 0 to the actual
  /// ephemeral port).
  uint16_t port() const { return bound_port_; }
  bool running() const { return running_.load(); }

  RequestExecutor* executor() { return executor_.get(); }
  const ServerOptions& options() const { return options_; }

  /// The full stats snapshot served to kStatsRequest frames: the
  /// executor's rolling/admission/remote-health sections plus the
  /// metrics registry and server-level counts. Loop thread, or after
  /// Stop (the ops daemon prints a final snapshot on graceful shutdown).
  std::string StatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    wire::FrameReader reader;
    /// Outbound bytes not yet accepted by the kernel.
    std::string out;
    size_t out_offset = 0;
    /// Slow-loris bookkeeping: set while `reader` holds a partial frame,
    /// with the stopwatch started when the partial began.
    bool partial_pending = false;
    WallTimer partial_since;
    /// Detached span covering the connection's lifetime (loop thread
    /// only; kNoSpan when tracing is off).
    obs::SpanId span = obs::kNoSpan;
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;

    explicit Connection(wire::Limits limits) : reader(limits) {}
  };

  void Loop();
  void AcceptNew();
  /// Reads whatever is available, assembles and dispatches frames.
  void HandleReadable(Connection* conn);
  Status DispatchFrame(Connection* conn, const wire::Frame& frame);
  void HandleScan(Connection* conn, const wire::Frame& frame);
  /// Queues bytes and flushes as much as the socket accepts.
  void QueueWrite(Connection* conn, std::string bytes);
  bool FlushWrites(Connection* conn);
  void CloseConnection(uint64_t conn_id, const char* reason);
  void DrainCompletions();
  double NextDeadlineMs() const;

  ServerOptions options_;
  obs::MetricsRegistry* metrics_;  // not owned; may be null
  obs::TraceContext* trace_;       // not owned; loop thread only; nullable
  std::unique_ptr<RequestExecutor> executor_;
  Database database_;  // served to kScanRequest frames

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: workers signal completions
  int wake_write_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;

  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;

  std::mutex completions_mu_;
  std::vector<ServeOutcome> completions_;
};

}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_SERVER_H_
