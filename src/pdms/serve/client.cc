#include "pdms/serve/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace serve {
namespace {

timeval ToTimeval(double ms) {
  if (ms < 1) ms = 1;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms - 1000.0 * tv.tv_sec) * 1000);
  return tv;
}

// Grafts a response's span block under the rpc span that requested it,
// shifting the remote clock so the remote spans start where the rpc span
// does (the best alignment available without clock synchronization).
void GraftSpans(obs::TraceContext* trace, obs::SpanId rpc_span,
                std::optional<wire::SpanBlock> block) {
  if (trace == nullptr || !block.has_value() || block->spans.empty()) {
    return;
  }
  double min_start = block->spans.front().start_ms;
  for (const obs::Span& s : block->spans) {
    min_start = std::min(min_start, s.start_ms);
  }
  double local_start = 0;
  if (const obs::Span* rpc = trace->span(rpc_span)) {
    local_start = rpc->start_ms;
  }
  trace->ImportSpans(rpc_span, std::move(block->spans),
                     local_start - min_start);
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  reader_ = wire::FrameReader(limits_);
}

Status Client::Connect(const std::string& host, uint16_t port,
                       double io_timeout_ms) {
  Close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  std::string port_text = StrFormat("%u", static_cast<unsigned>(port));
  int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &found);
  if (rc != 0 || found == nullptr) {
    return Status::Unavailable(
        StrFormat("resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }
  int fd = ::socket(found->ai_family, found->ai_socktype,
                    found->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(found);
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  timeval tv = ToTimeval(io_timeout_ms);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  rc = ::connect(fd, found->ai_addr, found->ai_addrlen);
  ::freeaddrinfo(found);
  if (rc < 0) {
    ::close(fd);
    return Status::Unavailable(
        StrFormat("connect %s:%u: %s", host.c_str(),
                  static_cast<unsigned>(port), std::strerror(errno)));
  }
  fd_ = fd;
  return Status::Ok();
}

Status Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(
        StrFormat("send: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

Result<wire::Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (true) {
    wire::Frame frame;
    PDMS_ASSIGN_OR_RETURN(bool ready, reader_.Next(&frame));
    if (ready) return frame;
    char buf[16 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("receive timed out");
    }
    return Status::Unavailable(
        StrFormat("recv: %s", std::strerror(errno)));
  }
}

Result<ServeReply> Client::Query(const std::string& query_text,
                                 double budget_ms,
                                 obs::TraceContext* trace) {
  wire::QueryFrame query;
  query.request_id = next_request_id_++;
  query.budget_ms = budget_ms;
  query.query = query_text;
  obs::ScopedSpan rpc(trace, "rpc_query");
  if (trace != nullptr) {
    rpc.Set("request_id", query.request_id);
    query.trace = wire::TraceEnvelope{trace->trace_id(), rpc.id()};
  }
  PDMS_RETURN_IF_ERROR(SendRaw(wire::EncodeQuery(query)));
  while (true) {
    PDMS_ASSIGN_OR_RETURN(wire::Frame frame, ReadFrame());
    if (frame.type == wire::FrameType::kAnswer) {
      PDMS_ASSIGN_OR_RETURN(wire::AnswerFrame answer,
                            wire::DecodeAnswer(frame, limits_));
      if (answer.request_id != query.request_id) continue;  // stale
      GraftSpans(trace, rpc.id(), std::move(answer.spans));
      answer.spans.reset();
      ServeReply reply;
      reply.answer = std::move(answer);
      return reply;
    }
    if (frame.type == wire::FrameType::kShed) {
      PDMS_ASSIGN_OR_RETURN(wire::ShedFrame shed,
                            wire::DecodeShed(frame, limits_));
      if (shed.request_id != query.request_id) continue;
      ServeReply reply;
      reply.shed = true;
      reply.shed_info = std::move(shed);
      return reply;
    }
    if (frame.type == wire::FrameType::kPong) continue;
    return Status::Internal(
        StrFormat("unexpected %s frame while awaiting answer",
                  wire::FrameTypeName(frame.type)));
  }
}

Status Client::Ping() {
  uint64_t id = next_request_id_++;
  PDMS_RETURN_IF_ERROR(SendRaw(wire::EncodePing(id)));
  while (true) {
    PDMS_ASSIGN_OR_RETURN(wire::Frame frame, ReadFrame());
    if (frame.type != wire::FrameType::kPong) continue;
    PDMS_ASSIGN_OR_RETURN(uint64_t got, wire::DecodePing(frame));
    if (got == id) return Status::Ok();
  }
}

Result<sim::Message> Client::ScanRelation(const std::string& relation,
                                          obs::TraceContext* trace) {
  wire::ScanFrame request;
  request.message.type = sim::Message::Type::kScanRequest;
  request.message.request_id = next_request_id_++;
  request.message.relation = relation;
  PDMS_RETURN_IF_ERROR(request.message.Validate());
  obs::ScopedSpan rpc(trace, "rpc_scan");
  if (trace != nullptr) {
    rpc.Set("relation", relation);
    request.trace = wire::TraceEnvelope{trace->trace_id(), rpc.id()};
  }
  PDMS_RETURN_IF_ERROR(SendRaw(wire::EncodeScanFrame(request)));
  while (true) {
    PDMS_ASSIGN_OR_RETURN(wire::Frame frame, ReadFrame());
    if (frame.type != wire::FrameType::kScanResponse) continue;
    PDMS_ASSIGN_OR_RETURN(wire::ScanFrame response,
                          wire::DecodeScanFrame(frame, limits_));
    if (response.message.request_id != request.message.request_id) continue;
    GraftSpans(trace, rpc.id(), std::move(response.spans));
    return std::move(response.message);
  }
}

Result<std::string> Client::Stats() {
  const uint64_t id = next_request_id_++;
  PDMS_RETURN_IF_ERROR(SendRaw(wire::EncodeStatsRequest(id)));
  while (true) {
    PDMS_ASSIGN_OR_RETURN(wire::Frame frame, ReadFrame());
    if (frame.type != wire::FrameType::kStatsResponse) continue;
    PDMS_ASSIGN_OR_RETURN(wire::StatsResponseFrame response,
                          wire::DecodeStatsResponse(frame, limits_));
    if (response.request_id == id) return std::move(response.json);
  }
}

}  // namespace serve
}  // namespace pdms
