#include "pdms/serve/admission.h"

#include <algorithm>

#include "pdms/util/strings.h"

namespace pdms {
namespace serve {

AdmissionController::AdmissionController(AdmissionOptions options,
                                         obs::MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {
  if (options_.max_queue == 0) options_.max_queue = 1;
  if (options_.workers == 0) options_.workers = 1;
  if (options_.initial_service_ms <= 0) options_.initial_service_ms = 1.0;
  ewma_ms_ = options_.initial_service_ms;
}

double AdmissionController::ExpectedWaitLocked(size_t depth) const {
  return static_cast<double>(depth) * ewma_ms_ /
         static_cast<double>(options_.workers);
}

double AdmissionController::RetryAfterLocked() const {
  return std::max(options_.retry_after_floor_ms,
                  ExpectedWaitLocked(depth_ > 0 ? depth_ : 1));
}

AdmissionController::Decision AdmissionController::Offer(
    double remaining_budget_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision d;
  if (depth_ >= options_.max_queue) {
    d.reason = wire::ShedReason::kQueueFull;
    d.retry_after_ms = RetryAfterLocked();
    d.queue_depth = static_cast<uint32_t>(depth_);
    if (metrics_) metrics_->Add("serve.shed_queue_full");
    return d;
  }
  // Joining the queue behind `depth_` requests means waiting roughly for
  // all of them plus this request's own service time; a budget that can't
  // cover that is shed now rather than after it has wasted queue space.
  if (remaining_budget_ms < ExpectedWaitLocked(depth_ + 1)) {
    d.reason = wire::ShedReason::kDeadline;
    d.retry_after_ms = RetryAfterLocked();
    d.queue_depth = static_cast<uint32_t>(depth_);
    if (metrics_) metrics_->Add("serve.shed_deadline");
    return d;
  }
  ++depth_;
  d.admitted = true;
  d.queue_depth = static_cast<uint32_t>(depth_);
  if (metrics_) metrics_->Add("serve.admitted");
  return d;
}

void AdmissionController::CancelQueued() {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ > 0) --depth_;
  if (metrics_) metrics_->Add("serve.shed_deadline");
}

void AdmissionController::OnComplete(double service_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ > 0) --depth_;
  if (service_ms < 0) service_ms = 0;
  ewma_ms_ = (1 - options_.ewma_alpha) * ewma_ms_ +
             options_.ewma_alpha * service_ms;
}

double AdmissionController::RetryAfterMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterLocked();
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

double AdmissionController::ewma_service_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_ms_;
}

std::string AdmissionController::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StrFormat("admission{depth=%zu/%zu ewma=%.3fms workers=%zu}",
                   depth_, options_.max_queue, ewma_ms_, options_.workers);
}

}  // namespace serve
}  // namespace pdms
