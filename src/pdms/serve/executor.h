#ifndef PDMS_SERVE_EXECUTOR_H_
#define PDMS_SERVE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"
#include "pdms/exec/thread_pool.h"
#include "pdms/obs/metrics.h"
#include "pdms/obs/rolling.h"
#include "pdms/serve/access_log.h"
#include "pdms/serve/admission.h"
#include "pdms/serve/client_pool.h"
#include "pdms/serve/wire.h"
#include "pdms/util/timer.h"

namespace pdms {
namespace serve {

/// Tunables for the serving executor.
struct ExecutorOptions {
  /// Worker threads evaluating admitted requests (the PR-5 work-stealing
  /// pool; also the parallelism the admission estimate assumes).
  size_t workers = 2;
  AdmissionOptions admission;
  /// Base reformulation options for every worker facade. `threads` stays 1
  /// per facade — parallelism comes from concurrent requests, and serial
  /// facades keep answers byte-identical to the in-process baseline.
  ReformulationOptions query_options;
  /// Test/bench knob: a minimum service time per request, spent sleeping
  /// before evaluation. With a known floor the server's capacity is
  /// `workers * 1000 / floor` qps, which lets the overload test drive a
  /// deterministic 2x overload regardless of host speed. 0 disables.
  double service_floor_ms = 0;
  /// Federated stored relations: relation name -> the remote ppl_serverd
  /// endpoints that can serve it, as "host:port" or a '|'-separated
  /// replica list ("h1:p1|h2:p2"). A worker re-fetches each mapped
  /// relation (via a kScanRequest, forwarding the request's trace
  /// envelope) into its facade's database before evaluating, so answers
  /// reflect the remote peer's live data and the request's trace spans
  /// both processes. With several replicas the fetch is routed by observed
  /// cost: untried endpoints are probed first, after that the endpoint
  /// minimizing avg_ms * (1 + 9 * failure_rate) wins — the serving-side
  /// analogue of the simulator's CostEstimator. A failed fetch keeps the
  /// previously-fetched copy (and is counted in the per-endpoint health
  /// the stats frame reports). Scans go through a keep-alive ClientPool:
  /// connections are reused across requests, and a stale pooled socket
  /// costs one transparent reconnect instead of a failed fetch.
  std::map<std::string, std::string> remote_relations;
  /// Single-flight coalescing: while a request for some canonical query is
  /// being evaluated, identical untraced requests wait for its outcome
  /// instead of occupying admission slots and workers; each follower gets
  /// the leader's answer (or shed) stamped with its own request id.
  /// Traced requests never coalesce — they want their own span tree.
  /// Off by default because followers bypass per-request admission and
  /// shedding (a coalesced request can neither queue nor be shed);
  /// ppl_serverd turns it on.
  bool coalesce_identical = false;
  /// Windowed SLO stats fed per request (borrowed, nullable — null is
  /// the zero-overhead sink, like the registry).
  obs::RollingStats* rolling = nullptr;
  /// Structured per-request access log (borrowed, nullable).
  AccessLog* access_log = nullptr;
};

/// An admitted unit of work: one query frame plus the connection it came
/// from and the stopwatch started when the frame was read off the socket
/// (the deadline measures queueing + service, not just service).
struct ServeRequest {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  std::string query;
  /// <= 0 means no deadline (wire convention).
  double budget_ms = 0;
  WallTimer arrival;
  /// The caller's trace context, when the query frame carried one; the
  /// worker assembles a server-side span tree and returns it in the
  /// answer's SpanBlock.
  std::optional<wire::TraceEnvelope> trace;
};

/// The outcome handed to the completion callback: exactly one of
/// `answer` (admitted and evaluated, possibly degraded/truncated) or
/// `shed` (deadline expired while the request sat in the queue).
struct ServeOutcome {
  uint64_t conn_id = 0;
  bool shed = false;
  wire::AnswerFrame answer;
  wire::ShedFrame shed_frame;
};

/// Evaluates admitted query requests on a work-stealing pool of worker
/// threads, each owning a serial Pdms facade over the same network and
/// data, all sharing one thread-safe plan cache + goal memo (the PR-5
/// concurrent-serving pattern, docs/parallel_execution.md). The executor
/// owns admission control: Submit either returns a ShedFrame immediately
/// (queue full / budget can't cover the expected wait) or schedules the
/// request and later fires the completion callback from a worker thread.
///
/// Deadline propagation (docs/serving.md): a request's remaining budget is
/// re-checked when a worker dequeues it — expiry while queued sheds it
/// without touching a facade or the network layer — and what is left
/// after dequeue becomes the facade's reformulation time budget, so
/// expiry mid-query yields a sound truncated answer instead of a missed
/// deadline.
class RequestExecutor {
 public:
  RequestExecutor(ExecutorOptions options, obs::MetricsRegistry* metrics);
  ~RequestExecutor();

  RequestExecutor(const RequestExecutor&) = delete;
  RequestExecutor& operator=(const RequestExecutor&) = delete;

  /// Builds the worker facades over copies of `network`/`data` and starts
  /// the pool. Must be called exactly once before Submit.
  Status Start(const PdmsNetwork& network, const Database& data,
               std::function<void(ServeOutcome)> done);

  /// Drains in-flight requests and joins the workers. Safe to call twice.
  void Stop();

  /// Offers a request. Returns the shed response when admission rejects
  /// it; nullopt when admitted, in which case `done` will eventually fire
  /// from a worker thread with this request's outcome.
  std::optional<wire::ShedFrame> Submit(ServeRequest request);

  AdmissionController* admission() { return &admission_; }
  cache::PlanCache* plan_cache() { return &plan_cache_; }
  cache::GoalMemo* goal_memo() { return &goal_memo_; }
  const ExecutorOptions& options() const { return options_; }

  /// Milliseconds since executor construction — the clock the rolling
  /// stats are fed on (and snapshot against).
  double NowMs() const { return epoch_.ElapsedMillis(); }

  /// The executor-owned sections of the stats snapshot, as a JSON
  /// fragment (comma-separated `"key": value` pairs without braces):
  /// the rolling SLO window, admission state, and per-remote scan
  /// health. The server wraps this with its own sections into the
  /// kStatsResponse payload.
  std::string StatsJsonFragment() const;

 private:
  struct RemoteHealth {
    uint64_t scans = 0;
    uint64_t failures = 0;
    double total_ms = 0;
  };

  void RunOne(ServeRequest request, const std::string& sf_key);
  Pdms* PopFacade();
  void PushFacade(Pdms* facade);
  /// The canonical-query coalescing key of `request`, or "" when the
  /// request must not coalesce (traced, or unparseable query text —
  /// unparseable requests all share one error answer in principle, but
  /// keying them on raw text would conflate distinct parse errors).
  std::string SingleFlightKey(const ServeRequest& request) const;
  /// Delivers the leader's outcome to every follower queued under
  /// `sf_key` (stamped with the follower's ids) and retires the key.
  void ResolveFollowers(const std::string& sf_key, const ServeOutcome& leader);
  /// Re-fetches every mapped remote relation into `facade`'s database,
  /// recording per-endpoint health; spans land in `trace` when non-null.
  void FetchRemotes(Pdms* facade, obs::TraceContext* trace);
  /// Splits a '|'-separated replica list and picks the fetch endpoint by
  /// observed cost (see ExecutorOptions::remote_relations).
  std::string PickEndpoint(const std::string& endpoints) const;
  Status FetchOneRemote(const std::string& relation,
                        const std::string& endpoint, Pdms* facade,
                        obs::TraceContext* trace);
  void LogShed(const ServeRequest& request, const wire::ShedFrame& shed,
               double queue_ms);

  ExecutorOptions options_;
  obs::MetricsRegistry* metrics_;  // not owned; may be null
  AdmissionController admission_;
  cache::PlanCache plan_cache_;
  cache::GoalMemo goal_memo_;
  std::function<void(ServeOutcome)> done_;
  std::unique_ptr<exec::ThreadPool> pool_;

  std::mutex facades_mu_;
  std::vector<std::unique_ptr<Pdms>> facades_;  // all workers, for cleanup
  std::vector<Pdms*> free_facades_;             // currently unclaimed

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t in_flight_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  /// Single-flight state: a key is present while its leader runs; the
  /// value holds the followers waiting on that leader's outcome.
  mutable std::mutex sf_mu_;
  std::map<std::string, std::vector<ServeRequest>> sf_inflight_;
  uint64_t sf_coalesced_ = 0;  // lifetime total, for the stats frame

  WallTimer epoch_;  // the rolling-stats clock, started at construction
  mutable std::mutex remotes_mu_;
  std::map<std::string, RemoteHealth> remote_health_;
  /// Keep-alive connections to federated peers, shared by all workers
  /// (the pool hands each worker an exclusive lease per scan).
  ClientPool client_pool_;
};

/// Builds the wire answer for one evaluated request. Exposed for tests:
/// the loopback smoke test asserts the server's frames decode to exactly
/// what this produces in-process.
wire::AnswerFrame MakeAnswerFrame(uint64_t request_id,
                                  const Result<AnswerResult>& result,
                                  double server_ms);

}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_EXECUTOR_H_
