#include "pdms/serve/client_pool.h"

#include <cstdlib>
#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace serve {

void ClientPool::Lease::Discard() {
  if (client_ != nullptr) client_->Close();
  Release();
}

void ClientPool::Lease::Release() {
  if (pool_ != nullptr && client_ != nullptr && client_->connected()) {
    pool_->Return(endpoint_, std::move(client_));
  }
  client_.reset();
  pool_ = nullptr;
}

Status ClientPool::ParseEndpoint(const std::string& endpoint,
                                 std::string* host, uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument(
        StrFormat("remote endpoint '%s' is not host:port", endpoint.c_str()));
  }
  const int parsed = std::atoi(endpoint.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) {
    return Status::InvalidArgument(
        StrFormat("remote endpoint '%s' has a bad port", endpoint.c_str()));
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::Ok();
}

Result<ClientPool::Lease> ClientPool::Checkout(const std::string& endpoint,
                                               bool force_fresh) {
  if (!force_fresh) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(endpoint);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<Client> client = std::move(it->second.back());
      it->second.pop_back();
      ++reuses_;
      if (metrics_) metrics_->Add("serve.pool_reuses");
      return Lease(this, endpoint, std::move(client), /*reused=*/true);
    }
  }
  std::string host;
  uint16_t port = 0;
  PDMS_RETURN_IF_ERROR(ParseEndpoint(endpoint, &host, &port));
  auto client = std::make_unique<Client>();
  PDMS_RETURN_IF_ERROR(client->Connect(host, port, options_.io_timeout_ms));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++dials_;
  }
  if (metrics_) metrics_->Add("serve.pool_dials");
  return Lease(this, endpoint, std::move(client), /*reused=*/false);
}

Result<sim::Message> ClientPool::ScanRelation(const std::string& endpoint,
                                              const std::string& relation,
                                              obs::TraceContext* trace,
                                              bool* reconnected) {
  if (reconnected != nullptr) *reconnected = false;
  PDMS_ASSIGN_OR_RETURN(Lease lease, Checkout(endpoint));
  Result<sim::Message> response = lease->ScanRelation(relation, trace);
  if (!response.ok() && lease.reused()) {
    // The idle socket went stale under us (server restart or idle
    // close). Drop it and retry once on a guaranteed-fresh dial; a
    // failure there is a real outage and propagates.
    lease.Discard();
    if (reconnected != nullptr) *reconnected = true;
    PDMS_ASSIGN_OR_RETURN(lease, Checkout(endpoint, /*force_fresh=*/true));
    response = lease->ScanRelation(relation, trace);
  }
  if (!response.ok()) {
    lease.Discard();
    return response.status();
  }
  return response;
}

void ClientPool::Return(const std::string& endpoint,
                        std::unique_ptr<Client> client) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::unique_ptr<Client>>& list = idle_[endpoint];
  if (list.size() >= options_.max_idle_per_endpoint) {
    ++discards_;
    if (metrics_) metrics_->Add("serve.pool_discards");
    return;  // client closes on destruction
  }
  list.push_back(std::move(client));
}

size_t ClientPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [endpoint, list] : idle_) n += list.size();
  return n;
}

uint64_t ClientPool::dials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dials_;
}

uint64_t ClientPool::reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

uint64_t ClientPool::discards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discards_;
}

}  // namespace serve
}  // namespace pdms
