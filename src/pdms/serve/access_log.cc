#include "pdms/serve/access_log.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "pdms/util/strings.h"

namespace pdms {
namespace serve {

namespace {

std::string Number(double v) { return StrFormat("%.10g", v); }

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string AccessEntry::ToJson() const {
  std::string out = "{";
  out += "\"ts_ms\": " + Number(ts_ms);
  out += ", \"conn\": " + std::to_string(conn_id);
  out += ", \"req\": " + std::to_string(request_id);
  out += ", \"query\": " + Quote(query);
  out += ", \"deadline_ms\": " + Number(deadline_ms);
  out += ", \"queue_ms\": " + Number(queue_ms);
  out += ", \"exec_ms\": " + Number(exec_ms);
  out += ", \"total_ms\": " + Number(total_ms);
  out += ", \"shed\": " + Quote(shed);
  out += std::string(", \"cache_hit\": ") + (cache_hit ? "true" : "false");
  out += ", \"verdict\": " + std::to_string(verdict);
  out += ", \"trace_id\": " + Quote(trace_id);
  out += "}";
  return out;
}

double AccessLog::WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(AccessLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("access log path is empty");
  }
  if (options.rotate_bytes == 0) options.rotate_bytes = 8u << 20;
  std::unique_ptr<AccessLog> log(new AccessLog(options));
  log->file_ = std::fopen(options.path.c_str(), "a");
  if (log->file_ == nullptr) {
    return Status::Unavailable(StrFormat("open %s: %s", options.path.c_str(),
                                         std::strerror(errno)));
  }
  struct stat st;
  if (::stat(options.path.c_str(), &st) == 0) {
    log->bytes_ = static_cast<size_t>(st.st_size);
  }
  return log;
}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void AccessLog::Append(const AccessEntry& entry) {
  std::string line = entry.ToJson();
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  bytes_ += line.size();
  ++lines_;
  if (bytes_ > options_.rotate_bytes) RotateLocked();
}

void AccessLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = options_.path + ".1";
  // Best effort: a failed rename just keeps appending to a fresh file.
  std::rename(options_.path.c_str(), rotated.c_str());
  file_ = std::fopen(options_.path.c_str(), "w");
  bytes_ = 0;
  ++rotations_;
}

void AccessLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

uint64_t AccessLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

uint64_t AccessLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace serve
}  // namespace pdms
