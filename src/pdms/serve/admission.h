#ifndef PDMS_SERVE_ADMISSION_H_
#define PDMS_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "pdms/obs/metrics.h"
#include "pdms/serve/wire.h"

namespace pdms {
namespace serve {

/// Tunables for the server's admission control (docs/serving.md).
struct AdmissionOptions {
  /// Bound on requests admitted but not yet completed (queued + running).
  /// At capacity every new request is shed with kQueueFull — overload
  /// turns into fast, well-formed rejections instead of unbounded queue
  /// growth.
  size_t max_queue = 64;
  /// Worker parallelism assumed by the expected-wait estimate (set by the
  /// executor to its actual worker count).
  size_t workers = 1;
  /// EWMA smoothing for the observed per-request service time.
  double ewma_alpha = 0.2;
  /// Seed for the EWMA before any request completes.
  double initial_service_ms = 5.0;
  /// Lower bound on the retry-after hint shed responses carry.
  double retry_after_floor_ms = 1.0;
};

/// Decides, per incoming request, whether the serving queue should accept
/// it — and tracks the EWMA service time that prices the decision.
///
/// A request is shed with kQueueFull when the bounded queue is at
/// capacity, and with kDeadline when its remaining budget cannot cover
/// the queue's expected wait `(depth + 1) * ewma_service / workers` —
/// admitting it would only burn a worker on an answer the client has
/// already given up on. Both sheds are counted in the registry
/// (`serve.shed_queue_full` / `serve.shed_deadline`), admissions in
/// `serve.admitted`.
///
/// Thread-safe; shared by the server's network loop (Offer) and the
/// executor's workers (CancelQueued/OnComplete).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options,
                               obs::MetricsRegistry* metrics = nullptr);

  struct Decision {
    bool admitted = false;
    /// Valid when !admitted.
    wire::ShedReason reason = wire::ShedReason::kQueueFull;
    double retry_after_ms = 0;
    /// Queue depth at decision time (after the admit, for admitted ones).
    uint32_t queue_depth = 0;
  };

  /// Offers a request with `remaining_budget_ms` of client budget left
  /// (+infinity for no deadline). On admit the depth is incremented; the
  /// caller must balance every admit with exactly one CancelQueued or
  /// OnComplete.
  Decision Offer(double remaining_budget_ms);

  /// An admitted request was abandoned before evaluation started — its
  /// deadline expired while it sat in the queue. Decrements the depth and
  /// counts `serve.shed_deadline` (the dequeue-time half of deadline
  /// shedding; no service-time sample is recorded since no work was done).
  void CancelQueued();

  /// An admitted request finished evaluation in `service_ms`; folds the
  /// sample into the EWMA and decrements the depth.
  void OnComplete(double service_ms);

  /// The retry-after hint for a shed response right now: the expected time
  /// for the current backlog to drain, floored at retry_after_floor_ms.
  double RetryAfterMs() const;

  size_t queue_depth() const;
  double ewma_service_ms() const;
  const AdmissionOptions& options() const { return options_; }

  std::string ToString() const;

 private:
  double ExpectedWaitLocked(size_t depth) const;
  double RetryAfterLocked() const;

  AdmissionOptions options_;
  obs::MetricsRegistry* metrics_;  // not owned; may be null

  mutable std::mutex mu_;
  size_t depth_ = 0;
  double ewma_ms_;
};

}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_ADMISSION_H_
