#ifndef PDMS_SERVE_CLIENT_H_
#define PDMS_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "pdms/obs/trace.h"
#include "pdms/serve/wire.h"
#include "pdms/sim/message.h"
#include "pdms/util/status.h"

namespace pdms {
namespace serve {

/// One query's outcome as seen by a client: either an answer (possibly
/// degraded/truncated — inspect `answer`) or a shed response with a
/// retry-after hint.
struct ServeReply {
  bool shed = false;
  wire::AnswerFrame answer;
  wire::ShedFrame shed_info;
};

/// A minimal blocking client for the ppl_serverd wire protocol: one
/// connection, synchronous request/response. Used by ppl_shell's
/// `connect` mode, the loopback tests, and as the building block of the
/// open-loop load generator (which runs many of them).
///
/// Not thread-safe; one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. `host` may be an IPv4 literal or a name
  /// resolvable by the system resolver. `io_timeout_ms` bounds every
  /// subsequent send/receive (and the connect itself).
  Status Connect(const std::string& host, uint16_t port,
                 double io_timeout_ms = 5000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one query and blocks for its answer or shed response.
  /// `budget_ms <= 0` means no deadline. With a non-null `trace` the
  /// query goes out as a version-2 frame carrying the trace envelope
  /// (trace id + an `rpc_query` span opened here), and the server's
  /// spans from the answer are grafted under that span — one trace id
  /// across both processes (docs/serving_telemetry.md).
  Result<ServeReply> Query(const std::string& query_text,
                           double budget_ms = 0,
                           obs::TraceContext* trace = nullptr);

  /// Round-trips a ping.
  Status Ping();

  /// Requests a stored-relation scan (the promoted sim::Message framing);
  /// returns the scan-response message (whose own `status` carries
  /// relation-level errors like NotFound). A non-null `trace` propagates
  /// exactly like Query's, under an `rpc_scan` span.
  Result<sim::Message> ScanRelation(const std::string& relation,
                                    obs::TraceContext* trace = nullptr);

  /// Fetches the server's live stats snapshot (kStatsRequest) as JSON.
  Result<std::string> Stats();

  // --- Low-level access (tests and the load generator) ---

  /// Writes raw bytes to the socket, unframed. The malformed-input tests
  /// use this to send garbage a well-behaved client never would.
  Status SendRaw(const std::string& bytes);

  /// Blocks for the next complete frame.
  Result<wire::Frame> ReadFrame();

 private:
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  wire::Limits limits_;
  wire::FrameReader reader_{wire::Limits{}};
};

}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_CLIENT_H_
