#include "pdms/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "pdms/util/strings.h"

namespace pdms {
namespace serve {
namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(
        StrFormat("fcntl(O_NONBLOCK): %s", std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace

PplServer::PplServer(ServerOptions options, obs::MetricsRegistry* metrics,
                     obs::TraceContext* trace)
    : options_(options), metrics_(metrics), trace_(trace) {}

PplServer::~PplServer() { Stop(); }

Status PplServer::Start(const PdmsNetwork& network, const Database& data) {
  if (started_) return Status::FailedPrecondition("server already started");
  started_ = true;
  database_ = data;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument(
        StrFormat("bad bind address '%s'", options_.bind_address.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Unavailable(StrFormat("bind: %s", std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return Status::Internal(StrFormat("listen: %s", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(
        StrFormat("getsockname: %s", std::strerror(errno)));
  }
  bound_port_ = ntohs(addr.sin_port);
  PDMS_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    return Status::Internal(StrFormat("pipe: %s", std::strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  PDMS_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  PDMS_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));

  executor_ =
      std::make_unique<RequestExecutor>(options_.executor, metrics_);
  PDMS_RETURN_IF_ERROR(executor_->Start(
      network, data, [this](ServeOutcome outcome) {
        {
          std::lock_guard<std::mutex> lock(completions_mu_);
          completions_.push_back(std::move(outcome));
        }
        // Wake the poll loop. The pipe is non-blocking: if its buffer is
        // full a wake is already pending, so a failed write is harmless.
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
      }));

  running_.store(true);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void PplServer::Stop() {
  if (!started_) return;
  if (!stop_requested_.exchange(true)) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  // Drain workers before tearing down the fds their completion callback
  // writes to.
  if (executor_ != nullptr) executor_->Stop();
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
    if (trace_ != nullptr && conn->span != obs::kNoSpan) {
      trace_->EndSpan(conn->span);
    }
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  running_.store(false);
}

double PplServer::NextDeadlineMs() const {
  double next = 100;  // housekeeping tick
  for (const auto& [id, conn] : connections_) {
    if (!conn->partial_pending) continue;
    double remaining =
        options_.read_deadline_ms - conn->partial_since.ElapsedMillis();
    next = std::min(next, std::max(remaining, 1.0));
  }
  return next;
}

void PplServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd entry (0 = not a conn)
  while (!stop_requested_.load()) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    for (auto& [id, conn] : connections_) {
      short events = POLLIN;
      if (conn->out_offset < conn->out.size()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    int timeout = static_cast<int>(NextDeadlineMs());
    int ready = ::poll(fds.data(), fds.size(), timeout < 1 ? 1 : timeout);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) AcceptNew();
    if (fds[1].revents & POLLIN) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    DrainCompletions();

    // Snapshot ids: handlers may close (erase) connections.
    for (size_t i = 2; i < fds.size(); ++i) {
      uint64_t id = fd_conn[i];
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConnection(id, "peer hung up");
        continue;
      }
      if (fds[i].revents & POLLOUT) {
        if (!FlushWrites(conn)) {
          CloseConnection(id, "write failed");
          continue;
        }
      }
      if (fds[i].revents & POLLIN) HandleReadable(conn);
    }

    // Slow-loris sweep: connections stuck mid-frame past the read
    // deadline are dropped.
    std::vector<uint64_t> expired;
    for (auto& [id, conn] : connections_) {
      if (conn->partial_pending &&
          conn->partial_since.ElapsedMillis() > options_.read_deadline_ms) {
        expired.push_back(id);
      }
    }
    for (uint64_t id : expired) {
      if (metrics_) metrics_->Add("serve.read_timeouts");
      CloseConnection(id, "read deadline (partial frame)");
    }
  }
}

void PplServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    if (connections_.size() >= options_.max_connections) {
      if (metrics_) metrics_->Add("serve.rejected_connections");
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.limits);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    if (trace_ != nullptr) {
      conn->span = trace_->StartSpanAt(
          StrFormat("conn#%llu", static_cast<unsigned long long>(conn->id)),
          obs::kNoSpan);
    }
    if (metrics_) metrics_->Add("serve.accepted");
    connections_.emplace(conn->id, std::move(conn));
  }
}

void PplServer::HandleReadable(Connection* conn) {
  const uint64_t id = conn->id;
  char buf[64 * 1024];
  size_t round_bytes = 0;
  while (round_bytes < (1u << 20)) {  // fairness cap per poll round
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      round_bytes += static_cast<size_t>(n);
      if (metrics_) metrics_->Add("serve.bytes_in", static_cast<uint64_t>(n));
      conn->reader.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      CloseConnection(id, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(id, "read error");
    return;
  }

  while (true) {
    wire::Frame frame;
    Result<bool> next = conn->reader.Next(&frame);
    if (!next.ok()) {
      if (metrics_) metrics_->Add("serve.protocol_errors");
      if (trace_ != nullptr && conn->span != obs::kNoSpan) {
        trace_->SetAttribute(conn->span, "protocol_error",
                             next.status().message());
      }
      CloseConnection(id, "protocol error");
      return;
    }
    if (!*next) break;
    conn->frames_in++;
    if (metrics_) metrics_->Add("serve.frames_in");
    Status dispatched = DispatchFrame(conn, frame);
    if (!dispatched.ok()) {
      if (metrics_) metrics_->Add("serve.protocol_errors");
      CloseConnection(id, "bad frame");
      return;
    }
    // Dispatch may have closed the connection (e.g. write-buffer cap).
    if (connections_.find(id) == connections_.end()) return;
  }

  // Track the start of a partial frame for the slow-loris deadline; a
  // completed frame resets the clock.
  if (conn->reader.has_partial()) {
    if (!conn->partial_pending) {
      conn->partial_pending = true;
      conn->partial_since.Reset();
    }
  } else {
    conn->partial_pending = false;
  }
}

Status PplServer::DispatchFrame(Connection* conn, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::FrameType::kQuery: {
      PDMS_ASSIGN_OR_RETURN(wire::QueryFrame query,
                            wire::DecodeQuery(frame, options_.limits));
      if (metrics_) metrics_->Add("serve.requests");
      ServeRequest request;
      request.conn_id = conn->id;
      request.request_id = query.request_id;
      request.query = std::move(query.query);
      request.budget_ms = query.budget_ms;
      request.trace = std::move(query.trace);
      std::optional<wire::ShedFrame> shed =
          executor_->Submit(std::move(request));
      if (shed.has_value()) {
        QueueWrite(conn, wire::EncodeShed(*shed));
      }
      return Status::Ok();
    }
    case wire::FrameType::kPing: {
      PDMS_ASSIGN_OR_RETURN(uint64_t ping_id, wire::DecodePing(frame));
      QueueWrite(conn, wire::EncodePong(ping_id));
      return Status::Ok();
    }
    case wire::FrameType::kScanRequest: {
      HandleScan(conn, frame);
      return Status::Ok();
    }
    case wire::FrameType::kStatsRequest: {
      PDMS_ASSIGN_OR_RETURN(wire::StatsRequestFrame stats,
                            wire::DecodeStatsRequest(frame));
      if (metrics_) metrics_->Add("serve.stats_requests");
      wire::StatsResponseFrame response;
      response.request_id = stats.request_id;
      response.json = StatsJson();
      QueueWrite(conn, wire::EncodeStatsResponse(response));
      return Status::Ok();
    }
    default:
      // Answer/shed/pong/scan-response are server-to-client only.
      return Status::InvalidArgument(
          StrFormat("client sent %s frame",
                    wire::FrameTypeName(frame.type)));
  }
}

void PplServer::HandleScan(Connection* conn, const wire::Frame& frame) {
  Result<wire::ScanFrame> request =
      wire::DecodeScanFrame(frame, options_.limits);
  if (!request.ok()) {
    if (metrics_) metrics_->Add("serve.protocol_errors");
    CloseConnection(conn->id, "bad scan frame");
    return;
  }
  // A traced scan records its serving into an ephemeral context under the
  // caller's trace id; the spans ride back in the response for the caller
  // to graft. Untraced scans answer version-1, byte-identical to before.
  const bool traced = request->trace.has_value();
  obs::TraceContext scan_trace(traced ? request->trace->trace_id : "scan");
  obs::ScopedSpan scan_span(traced ? &scan_trace : nullptr, "scan");
  scan_span.Set("relation", request->message.relation);

  // The promoted sim framing end to end: answer a stored-relation scan
  // exactly like a sim peer node would, from this server's database.
  wire::ScanFrame reply;
  sim::Message& response = reply.message;
  response.type = sim::Message::Type::kScanResponse;
  response.request_id = request->message.request_id;
  response.relation = request->message.relation;
  const Relation* relation = database_.Find(request->message.relation);
  if (relation == nullptr) {
    response.status = Status::NotFound(StrFormat(
        "no stored relation '%s'", request->message.relation.c_str()));
    scan_span.Set("error", "not_found");
  } else {
    response.arity = relation->arity();
    response.tuples = relation->tuples();
    scan_span.Set("tuples", static_cast<uint64_t>(response.tuples.size()));
  }
  if (traced) {
    scan_span.End();
    wire::SpanBlock block;
    block.trace_id = scan_trace.trace_id();
    block.spans = scan_trace.spans();
    reply.spans = std::move(block);
  }
  QueueWrite(conn, wire::EncodeScanFrame(reply));
}

std::string PplServer::StatsJson() const {
  std::string out = "{";
  out += executor_ != nullptr ? executor_->StatsJsonFragment()
                              : std::string("\"rolling\": null");
  out += StrFormat(", \"server\": {\"connections\": %zu, \"port\": %u}",
                   connections_.size(),
                   static_cast<unsigned>(bound_port_));
  out += ", \"metrics\": ";
  out += metrics_ != nullptr ? metrics_->ToJson() : std::string("null");
  out += "}";
  return out;
}

void PplServer::QueueWrite(Connection* conn, std::string bytes) {
  conn->out.append(bytes);
  conn->frames_out++;
  if (metrics_) metrics_->Add("serve.frames_out");
  if (!FlushWrites(conn)) {
    CloseConnection(conn->id, "write failed");
    return;
  }
  auto it = connections_.find(conn->id);
  if (it == connections_.end()) return;
  if (conn->out.size() - conn->out_offset > options_.max_write_buffer_bytes) {
    if (metrics_) metrics_->Add("serve.slow_consumer_closed");
    CloseConnection(conn->id, "write buffer over cap");
  }
}

bool PplServer::FlushWrites(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_offset,
                        conn->out.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      if (metrics_) {
        metrics_->Add("serve.bytes_out", static_cast<uint64_t>(n));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // broken pipe / reset: caller closes
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset > (1u << 16)) {
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  return true;
}

void PplServer::CloseConnection(uint64_t conn_id, const char* reason) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (trace_ != nullptr && conn->span != obs::kNoSpan) {
    trace_->SetAttribute(conn->span, "close_reason", reason);
    trace_->SetAttribute(conn->span, "frames_in", conn->frames_in);
    trace_->SetAttribute(conn->span, "frames_out", conn->frames_out);
    trace_->EndSpan(conn->span);
  }
  if (metrics_) metrics_->Add("serve.closed");
  ::close(conn->fd);
  connections_.erase(it);
}

void PplServer::DrainCompletions() {
  std::vector<ServeOutcome> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (ServeOutcome& outcome : batch) {
    auto it = connections_.find(outcome.conn_id);
    if (it == connections_.end()) {
      // The client disconnected while its request was in flight; the
      // answer is dropped, the server unharmed.
      if (metrics_) metrics_->Add("serve.orphaned_responses");
      continue;
    }
    Connection* conn = it->second.get();
    if (outcome.shed) {
      QueueWrite(conn, wire::EncodeShed(outcome.shed_frame));
    } else {
      QueueWrite(conn, wire::EncodeAnswer(outcome.answer));
    }
  }
}

}  // namespace serve
}  // namespace pdms
