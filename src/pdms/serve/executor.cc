#include "pdms/serve/executor.h"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>
#include <utility>

#include "pdms/lang/canonical.h"
#include "pdms/lang/parser.h"
#include "pdms/serve/client.h"
#include "pdms/util/check.h"
#include "pdms/util/strings.h"

namespace pdms {
namespace serve {
namespace {

AdmissionOptions WithWorkers(AdmissionOptions admission, size_t workers) {
  admission.workers = workers > 0 ? workers : 1;
  return admission;
}

double RemainingBudgetMs(const ServeRequest& request) {
  if (request.budget_ms <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return Deadline::AfterMillis(request.budget_ms)
      .RemainingMillis(request.arrival.ElapsedMillis());
}

obs::RollingStats::Shed ToRollingShed(wire::ShedReason reason) {
  return reason == wire::ShedReason::kQueueFull
             ? obs::RollingStats::Shed::kQueueFull
             : obs::RollingStats::Shed::kDeadline;
}

}  // namespace

wire::AnswerFrame MakeAnswerFrame(uint64_t request_id,
                                  const Result<AnswerResult>& result,
                                  double server_ms) {
  wire::AnswerFrame a;
  a.request_id = request_id;
  a.server_ms = server_ms;
  if (!result.ok()) {
    a.status_code = static_cast<uint32_t>(result.status().code());
    a.status_message = result.status().message();
    a.relation_name = "q";
    return a;
  }
  const AnswerResult& r = *result;
  a.completeness = static_cast<uint8_t>(r.degradation.completeness);
  if (r.stats.tree_truncated) a.truncated |= wire::AnswerFrame::kTruncatedTree;
  if (r.stats.enumeration_truncated) {
    a.truncated |= wire::AnswerFrame::kTruncatedEnumeration;
  }
  a.rewritings_skipped = r.degradation.rewritings_skipped;
  a.branches_pruned = r.degradation.branches_pruned;
  a.excluded_peers = r.degradation.excluded_peers;
  a.excluded_stored = r.degradation.excluded_stored;
  a.relation_name = r.answers.name();
  a.arity = static_cast<uint32_t>(r.answers.arity());
  a.tuples = r.answers.tuples();
  return a;
}

RequestExecutor::RequestExecutor(ExecutorOptions options,
                                 obs::MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      admission_(WithWorkers(options.admission,
                             options.workers > 0 ? options.workers : 1),
                 metrics),
      client_pool_(ClientPool::Options{}, metrics) {
  if (options_.workers == 0) options_.workers = 1;
}

RequestExecutor::~RequestExecutor() { Stop(); }

Status RequestExecutor::Start(const PdmsNetwork& network, const Database& data,
                              std::function<void(ServeOutcome)> done) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (started_) {
      return Status::FailedPrecondition("executor already started");
    }
    started_ = true;
  }
  done_ = std::move(done);
  // One serial facade per worker, all sharing the thread-safe caches; a
  // worker claims a free facade for the duration of one request, so the
  // facades themselves never see concurrent use.
  for (size_t i = 0; i < options_.workers; ++i) {
    ReformulationOptions opts = options_.query_options;
    opts.threads = 1;
    auto facade = std::make_unique<Pdms>(opts);
    *facade->mutable_network() = network;
    *facade->mutable_database() = data;
    facade->set_plan_cache(&plan_cache_);
    facade->set_goal_memo(&goal_memo_);
    facade->set_metrics(metrics_);
    free_facades_.push_back(facade.get());
    facades_.push_back(std::move(facade));
  }
  pool_ = std::make_unique<exec::ThreadPool>(options_.workers);
  return Status::Ok();
}

void RequestExecutor::Stop() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  pool_.reset();  // joins the workers; every submitted task has run
}

std::optional<wire::ShedFrame> RequestExecutor::Submit(ServeRequest request) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (!started_ || stopped_) {
      wire::ShedFrame shed;
      shed.request_id = request.request_id;
      shed.reason = wire::ShedReason::kQueueFull;
      shed.retry_after_ms = admission_.options().retry_after_floor_ms;
      shed.message = "server shutting down";
      LogShed(request, shed, 0);
      return shed;
    }
  }
  // Single-flight: identical untraced queries ride the in-flight leader
  // instead of taking admission slots and workers. The key is claimed
  // before the admission offer so two concurrent identical requests can
  // never both become leaders; a shed leader resolves (sheds) whatever
  // followers raced in behind it.
  const std::string sf_key = SingleFlightKey(request);
  if (!sf_key.empty()) {
    std::lock_guard<std::mutex> lock(sf_mu_);
    auto it = sf_inflight_.find(sf_key);
    if (it != sf_inflight_.end()) {
      it->second.push_back(std::move(request));
      ++sf_coalesced_;
      if (metrics_) metrics_->Add("serve.coalesced");
      return std::nullopt;  // resolved when the leader completes
    }
    sf_inflight_.emplace(sf_key, std::vector<ServeRequest>{});
  }
  AdmissionController::Decision decision =
      admission_.Offer(RemainingBudgetMs(request));
  if (!decision.admitted) {
    wire::ShedFrame shed;
    shed.request_id = request.request_id;
    shed.reason = decision.reason;
    shed.retry_after_ms = decision.retry_after_ms;
    shed.queue_depth = decision.queue_depth;
    shed.message = decision.reason == wire::ShedReason::kQueueFull
                       ? "admission queue full"
                       : "remaining budget below expected wait";
    if (options_.rolling != nullptr) {
      options_.rolling->RecordShed(NowMs(), ToRollingShed(decision.reason));
    }
    LogShed(request, shed, 0);
    if (!sf_key.empty()) {
      ServeOutcome leader;
      leader.shed = true;
      leader.shed_frame = shed;
      ResolveFollowers(sf_key, leader);
    }
    return shed;
  }
  if (options_.rolling != nullptr) {
    options_.rolling->RecordQueueDepth(NowMs(), decision.queue_depth);
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++in_flight_;
  }
  pool_->Submit([this, sf_key, request = std::move(request)]() mutable {
    RunOne(std::move(request), sf_key);
  });
  return std::nullopt;
}

std::string RequestExecutor::SingleFlightKey(
    const ServeRequest& request) const {
  if (!options_.coalesce_identical) return "";
  if (request.trace.has_value()) return "";  // wants its own span tree
  Result<ConjunctiveQuery> parsed = ParseRuleText(request.query);
  if (!parsed.ok()) return "";
  return CanonicalQueryKey(*parsed);
}

void RequestExecutor::ResolveFollowers(const std::string& sf_key,
                                       const ServeOutcome& leader) {
  if (sf_key.empty()) return;
  std::vector<ServeRequest> followers;
  {
    std::lock_guard<std::mutex> lock(sf_mu_);
    auto it = sf_inflight_.find(sf_key);
    if (it == sf_inflight_.end()) return;
    followers = std::move(it->second);
    sf_inflight_.erase(it);
  }
  for (ServeRequest& f : followers) {
    ServeOutcome out;
    out.conn_id = f.conn_id;
    out.shed = leader.shed;
    if (leader.shed) {
      out.shed_frame = leader.shed_frame;
      out.shed_frame.request_id = f.request_id;
      if (options_.rolling != nullptr) {
        options_.rolling->RecordShed(NowMs(),
                                     ToRollingShed(out.shed_frame.reason));
      }
      LogShed(f, out.shed_frame, f.arrival.ElapsedMillis());
    } else {
      out.answer = leader.answer;
      out.answer.request_id = f.request_id;
      out.answer.spans.reset();  // the span tree belongs to the leader
      const double total_ms = f.arrival.ElapsedMillis();
      if (options_.rolling != nullptr) {
        // A coalesced answer is the ultimate cache hit: zero evaluation.
        options_.rolling->RecordAnswer(NowMs(), total_ms, /*cache_hit=*/true,
                                       out.answer.completeness,
                                       out.answer.truncated != 0);
      }
      if (options_.access_log != nullptr) {
        AccessEntry entry;
        entry.ts_ms = AccessLog::WallMs();
        entry.conn_id = f.conn_id;
        entry.request_id = f.request_id;
        entry.query = sf_key;
        entry.deadline_ms = f.budget_ms;
        entry.queue_ms = total_ms;  // spent entirely waiting on the leader
        entry.total_ms = total_ms;
        entry.cache_hit = true;
        entry.verdict = out.answer.status_code == 0
                            ? static_cast<int>(out.answer.completeness)
                            : -1;
        options_.access_log->Append(entry);
      }
    }
    done_(std::move(out));
  }
}

Pdms* RequestExecutor::PopFacade() {
  std::lock_guard<std::mutex> lock(facades_mu_);
  PDMS_CHECK_MSG(!free_facades_.empty(),
                 "more concurrent requests than worker facades");
  Pdms* facade = free_facades_.back();
  free_facades_.pop_back();
  return facade;
}

void RequestExecutor::PushFacade(Pdms* facade) {
  std::lock_guard<std::mutex> lock(facades_mu_);
  free_facades_.push_back(facade);
}

void RequestExecutor::RunOne(ServeRequest request, const std::string& sf_key) {
  WallTimer service;
  const double queue_ms = request.arrival.ElapsedMillis();
  ServeOutcome out;
  out.conn_id = request.conn_id;

  const Deadline deadline = request.budget_ms > 0
                                ? Deadline::AfterMillis(request.budget_ms)
                                : Deadline::Infinite();
  // Dequeue-time re-check: a budget that ran out while the request sat in
  // the queue sheds it here, before any facade (and thus any stored-
  // relation access) is touched.
  if (deadline.Expired(request.arrival.ElapsedMillis())) {
    admission_.CancelQueued();
    out.shed = true;
    out.shed_frame.request_id = request.request_id;
    out.shed_frame.reason = wire::ShedReason::kDeadline;
    out.shed_frame.retry_after_ms = admission_.RetryAfterMs();
    out.shed_frame.queue_depth =
        static_cast<uint32_t>(admission_.queue_depth());
    out.shed_frame.message = "budget expired while queued";
    if (metrics_) metrics_->Add("serve.shed_after_queue");
    if (options_.rolling != nullptr) {
      options_.rolling->RecordShed(NowMs(),
                                   obs::RollingStats::Shed::kDeadline);
    }
    LogShed(request, out.shed_frame, queue_ms);
    ResolveFollowers(sf_key, out);
    done_(std::move(out));
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (--in_flight_ == 0) drain_cv_.notify_all();
    return;
  }

  if (options_.service_floor_ms > 0) {
    // The deterministic-capacity knob: pad every request to a known
    // service time so tests can compute the overload point exactly.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.service_floor_ms));
  }

  Pdms* facade = PopFacade();

  // Server-side trace assembly. The request's envelope roots a combined
  // context whose clock every piece shares: the federation fetches and
  // the facade's query each record into their own Fork (the facade
  // clears its context at query entry, which must not wipe the fetch
  // spans) and are grafted under one "serve" root. The whole tree rides
  // back in the answer's SpanBlock for the client to import.
  const bool traced = request.trace.has_value();
  obs::TraceContext combined(traced ? request.trace->trace_id : "query");
  obs::SpanId root = obs::kNoSpan;
  if (traced) {
    root = combined.StartSpan("serve");
    combined.SetAttribute(root, "request_id", request.request_id);
    combined.SetAttribute(root, "queue_ms", queue_ms);
  }

  if (!options_.remote_relations.empty()) {
    obs::TraceContext fetch_ctx = combined.Fork();
    FetchRemotes(facade, traced ? &fetch_ctx : nullptr);
    if (traced) combined.MergeChild(root, std::move(fetch_ctx));
  }

  // Whatever budget survives queueing becomes the reformulation time
  // budget, so mid-query expiry degrades to a sound truncated answer.
  ReformulationOptions opts = options_.query_options;
  opts.threads = 1;
  if (!deadline.infinite()) {
    double remaining = deadline.RemainingMillis(request.arrival.ElapsedMillis());
    opts.time_budget_ms = remaining > 0 ? remaining : 0.001;
  }
  facade->set_options(opts);
  obs::TraceContext query_ctx = combined.Fork();
  if (traced) facade->set_trace(&query_ctx);
  Result<AnswerResult> result = facade->AnswerWithReport(request.query);
  if (traced) {
    facade->set_trace(nullptr);
    combined.MergeChild(root, std::move(query_ctx));
  }
  std::string canonical = request.query;
  if (options_.access_log != nullptr) {
    Result<ConjunctiveQuery> parsed = facade->ParseQuery(request.query);
    if (parsed.ok()) canonical = CanonicalQueryKey(*parsed);
  }
  PushFacade(facade);

  const double service_ms = service.ElapsedMillis();
  out.answer = MakeAnswerFrame(request.request_id, result, service_ms);
  if (traced) {
    combined.EndSpan(root);
    wire::SpanBlock block;
    block.trace_id = combined.trace_id();
    block.spans = combined.spans();
    out.answer.spans = std::move(block);
  }
  if (metrics_) {
    metrics_->Add("serve.completed");
    metrics_->Observe("serve.service_ms", service_ms);
    if (out.answer.truncated != 0) metrics_->Add("serve.truncated_answers");
  }
  admission_.OnComplete(service_ms);

  const double total_ms = request.arrival.ElapsedMillis();
  const bool cache_hit = result.ok() && result->plan_cache_hit;
  const int verdict =
      result.ok() ? static_cast<int>(result->degradation.completeness) : -1;
  if (options_.rolling != nullptr) {
    options_.rolling->RecordAnswer(NowMs(), total_ms, cache_hit,
                                   verdict < 0 ? 0 : verdict,
                                   out.answer.truncated != 0);
    options_.rolling->RecordQueueDepth(NowMs(), admission_.queue_depth());
  }
  if (options_.access_log != nullptr) {
    AccessEntry entry;
    entry.ts_ms = AccessLog::WallMs();
    entry.conn_id = request.conn_id;
    entry.request_id = request.request_id;
    entry.query = canonical;
    entry.deadline_ms = request.budget_ms;
    entry.queue_ms = queue_ms;
    entry.exec_ms = service_ms;
    entry.total_ms = total_ms;
    entry.cache_hit = cache_hit;
    entry.verdict = verdict;
    if (traced) entry.trace_id = request.trace->trace_id;
    options_.access_log->Append(entry);
  }

  ResolveFollowers(sf_key, out);
  done_(std::move(out));
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (--in_flight_ == 0) drain_cv_.notify_all();
}

void RequestExecutor::LogShed(const ServeRequest& request,
                              const wire::ShedFrame& shed, double queue_ms) {
  if (options_.access_log == nullptr) return;
  AccessEntry entry;
  entry.ts_ms = AccessLog::WallMs();
  entry.conn_id = request.conn_id;
  entry.request_id = request.request_id;
  entry.query = request.query;  // raw: no facade in hand on the shed path
  entry.deadline_ms = request.budget_ms;
  entry.queue_ms = queue_ms;
  entry.total_ms = request.arrival.ElapsedMillis();
  entry.shed = wire::ShedReasonName(shed.reason);
  if (request.trace.has_value()) entry.trace_id = request.trace->trace_id;
  options_.access_log->Append(entry);
}

std::string RequestExecutor::PickEndpoint(const std::string& endpoints) const {
  std::vector<std::string> replicas = StrSplit(endpoints, '|');
  if (replicas.size() <= 1) return endpoints;
  std::lock_guard<std::mutex> lock(remotes_mu_);
  std::string best;
  double best_cost = 0;
  for (const std::string& endpoint : replicas) {
    auto it = remote_health_.find(endpoint);
    if (it == remote_health_.end() || it->second.scans == 0) {
      return endpoint;  // untried replicas are probed before any ranking
    }
    const RemoteHealth& health = it->second;
    const double avg_ms =
        health.total_ms / static_cast<double>(health.scans);
    const double fail_rate = static_cast<double>(health.failures) /
                             static_cast<double>(health.scans);
    // Failure-inflated average latency: a replica failing every scan
    // costs 10x its average, so a healthy slower replica beats it.
    const double cost = avg_ms * (1.0 + 9.0 * fail_rate);
    if (best.empty() || cost < best_cost) {
      best = endpoint;
      best_cost = cost;
    }
  }
  return best;
}

void RequestExecutor::FetchRemotes(Pdms* facade, obs::TraceContext* trace) {
  for (const auto& [relation, endpoints] : options_.remote_relations) {
    const std::string endpoint = PickEndpoint(endpoints);
    WallTimer fetch;
    Status status = FetchOneRemote(relation, endpoint, facade, trace);
    const double fetch_ms = fetch.ElapsedMillis();
    if (metrics_) {
      metrics_->Add(status.ok() ? "serve.remote_scans"
                                : "serve.remote_scan_failures");
      metrics_->Observe("serve.remote_scan_ms", fetch_ms);
    }
    std::lock_guard<std::mutex> lock(remotes_mu_);
    RemoteHealth& health = remote_health_[endpoint];
    ++health.scans;
    health.total_ms += fetch_ms;
    if (!status.ok()) ++health.failures;
  }
}

Status RequestExecutor::FetchOneRemote(const std::string& relation,
                                       const std::string& endpoint,
                                       Pdms* facade,
                                       obs::TraceContext* trace) {
  obs::ScopedSpan span(trace, "remote_fetch");
  span.Set("relation", relation);
  span.Set("endpoint", endpoint);
  bool reconnected = false;
  Result<sim::Message> response =
      client_pool_.ScanRelation(endpoint, relation, trace, &reconnected);
  if (reconnected) span.Set("reconnected", uint64_t{1});
  if (!response.ok()) {
    span.Set("error", response.status().message());
    return response.status();
  }
  if (!response->status.ok()) {
    span.Set("error", response->status.message());
    return response->status;
  }
  Database* db = facade->mutable_database();
  Relation* existing = db->FindMutable(relation);
  if (existing != nullptr && existing->arity() == response->arity) {
    existing->Clear();
    for (const Tuple& tuple : response->tuples) existing->Insert(tuple);
  } else {
    // Unknown (or re-declared) relation: insert creates it fresh. An
    // arity change mid-flight is a remote schema change; the stale copy
    // is unreachable through the (re-validated) catalog anyway.
    for (const Tuple& tuple : response->tuples) db->Insert(relation, tuple);
  }
  span.Set("tuples", static_cast<uint64_t>(response->tuples.size()));
  return Status::Ok();
}

std::string RequestExecutor::StatsJsonFragment() const {
  std::string out = "\"rolling\": ";
  if (options_.rolling != nullptr) {
    out += options_.rolling->GetSnapshot(NowMs()).ToJson();
  } else {
    out += "null";
  }
  out += StrFormat(
      ", \"admission\": {\"queue_depth\": %zu, \"ewma_service_ms\": %.10g, "
      "\"max_queue\": %zu, \"workers\": %zu}",
      admission_.queue_depth(), admission_.ewma_service_ms(),
      admission_.options().max_queue, options_.workers);
  out += ", \"remotes\": {";
  {
    std::lock_guard<std::mutex> lock(remotes_mu_);
    bool first = true;
    for (const auto& [endpoint, health] : remote_health_) {
      if (!first) out += ", ";
      first = false;
      out += StrFormat(
          "\"%s\": {\"scans\": %llu, \"failures\": %llu, "
          "\"total_ms\": %.10g}",
          endpoint.c_str(), static_cast<unsigned long long>(health.scans),
          static_cast<unsigned long long>(health.failures), health.total_ms);
    }
  }
  out += "}";
  out += StrFormat(
      ", \"client_pool\": {\"dials\": %llu, \"reuses\": %llu, "
      "\"discards\": %llu, \"idle\": %zu}",
      static_cast<unsigned long long>(client_pool_.dials()),
      static_cast<unsigned long long>(client_pool_.reuses()),
      static_cast<unsigned long long>(client_pool_.discards()),
      client_pool_.idle_count());
  {
    std::lock_guard<std::mutex> lock(sf_mu_);
    out += StrFormat(
        ", \"single_flight\": {\"inflight\": %zu, \"coalesced\": %llu}",
        sf_inflight_.size(), static_cast<unsigned long long>(sf_coalesced_));
  }
  return out;
}

}  // namespace serve
}  // namespace pdms
