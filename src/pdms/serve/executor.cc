#include "pdms/serve/executor.h"

#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "pdms/util/check.h"

namespace pdms {
namespace serve {
namespace {

AdmissionOptions WithWorkers(AdmissionOptions admission, size_t workers) {
  admission.workers = workers > 0 ? workers : 1;
  return admission;
}

double RemainingBudgetMs(const ServeRequest& request) {
  if (request.budget_ms <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return Deadline::AfterMillis(request.budget_ms)
      .RemainingMillis(request.arrival.ElapsedMillis());
}

}  // namespace

wire::AnswerFrame MakeAnswerFrame(uint64_t request_id,
                                  const Result<AnswerResult>& result,
                                  double server_ms) {
  wire::AnswerFrame a;
  a.request_id = request_id;
  a.server_ms = server_ms;
  if (!result.ok()) {
    a.status_code = static_cast<uint32_t>(result.status().code());
    a.status_message = result.status().message();
    a.relation_name = "q";
    return a;
  }
  const AnswerResult& r = *result;
  a.completeness = static_cast<uint8_t>(r.degradation.completeness);
  if (r.stats.tree_truncated) a.truncated |= wire::AnswerFrame::kTruncatedTree;
  if (r.stats.enumeration_truncated) {
    a.truncated |= wire::AnswerFrame::kTruncatedEnumeration;
  }
  a.rewritings_skipped = r.degradation.rewritings_skipped;
  a.branches_pruned = r.degradation.branches_pruned;
  a.excluded_peers = r.degradation.excluded_peers;
  a.excluded_stored = r.degradation.excluded_stored;
  a.relation_name = r.answers.name();
  a.arity = static_cast<uint32_t>(r.answers.arity());
  a.tuples = r.answers.tuples();
  return a;
}

RequestExecutor::RequestExecutor(ExecutorOptions options,
                                 obs::MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      admission_(WithWorkers(options.admission,
                             options.workers > 0 ? options.workers : 1),
                 metrics) {
  if (options_.workers == 0) options_.workers = 1;
}

RequestExecutor::~RequestExecutor() { Stop(); }

Status RequestExecutor::Start(const PdmsNetwork& network, const Database& data,
                              std::function<void(ServeOutcome)> done) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (started_) {
      return Status::FailedPrecondition("executor already started");
    }
    started_ = true;
  }
  done_ = std::move(done);
  // One serial facade per worker, all sharing the thread-safe caches; a
  // worker claims a free facade for the duration of one request, so the
  // facades themselves never see concurrent use.
  for (size_t i = 0; i < options_.workers; ++i) {
    ReformulationOptions opts = options_.query_options;
    opts.threads = 1;
    auto facade = std::make_unique<Pdms>(opts);
    *facade->mutable_network() = network;
    *facade->mutable_database() = data;
    facade->set_plan_cache(&plan_cache_);
    facade->set_goal_memo(&goal_memo_);
    facade->set_metrics(metrics_);
    free_facades_.push_back(facade.get());
    facades_.push_back(std::move(facade));
  }
  pool_ = std::make_unique<exec::ThreadPool>(options_.workers);
  return Status::Ok();
}

void RequestExecutor::Stop() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  pool_.reset();  // joins the workers; every submitted task has run
}

std::optional<wire::ShedFrame> RequestExecutor::Submit(ServeRequest request) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (!started_ || stopped_) {
      wire::ShedFrame shed;
      shed.request_id = request.request_id;
      shed.reason = wire::ShedReason::kQueueFull;
      shed.retry_after_ms = admission_.options().retry_after_floor_ms;
      shed.message = "server shutting down";
      return shed;
    }
  }
  AdmissionController::Decision decision =
      admission_.Offer(RemainingBudgetMs(request));
  if (!decision.admitted) {
    wire::ShedFrame shed;
    shed.request_id = request.request_id;
    shed.reason = decision.reason;
    shed.retry_after_ms = decision.retry_after_ms;
    shed.queue_depth = decision.queue_depth;
    shed.message = decision.reason == wire::ShedReason::kQueueFull
                       ? "admission queue full"
                       : "remaining budget below expected wait";
    return shed;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++in_flight_;
  }
  pool_->Submit([this, request = std::move(request)]() mutable {
    RunOne(std::move(request));
  });
  return std::nullopt;
}

Pdms* RequestExecutor::PopFacade() {
  std::lock_guard<std::mutex> lock(facades_mu_);
  PDMS_CHECK_MSG(!free_facades_.empty(),
                 "more concurrent requests than worker facades");
  Pdms* facade = free_facades_.back();
  free_facades_.pop_back();
  return facade;
}

void RequestExecutor::PushFacade(Pdms* facade) {
  std::lock_guard<std::mutex> lock(facades_mu_);
  free_facades_.push_back(facade);
}

void RequestExecutor::RunOne(ServeRequest request) {
  WallTimer service;
  ServeOutcome out;
  out.conn_id = request.conn_id;

  const Deadline deadline = request.budget_ms > 0
                                ? Deadline::AfterMillis(request.budget_ms)
                                : Deadline::Infinite();
  // Dequeue-time re-check: a budget that ran out while the request sat in
  // the queue sheds it here, before any facade (and thus any stored-
  // relation access) is touched.
  if (deadline.Expired(request.arrival.ElapsedMillis())) {
    admission_.CancelQueued();
    out.shed = true;
    out.shed_frame.request_id = request.request_id;
    out.shed_frame.reason = wire::ShedReason::kDeadline;
    out.shed_frame.retry_after_ms = admission_.RetryAfterMs();
    out.shed_frame.queue_depth =
        static_cast<uint32_t>(admission_.queue_depth());
    out.shed_frame.message = "budget expired while queued";
    if (metrics_) metrics_->Add("serve.shed_after_queue");
    done_(std::move(out));
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (--in_flight_ == 0) drain_cv_.notify_all();
    return;
  }

  if (options_.service_floor_ms > 0) {
    // The deterministic-capacity knob: pad every request to a known
    // service time so tests can compute the overload point exactly.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.service_floor_ms));
  }

  Pdms* facade = PopFacade();
  // Whatever budget survives queueing becomes the reformulation time
  // budget, so mid-query expiry degrades to a sound truncated answer.
  ReformulationOptions opts = options_.query_options;
  opts.threads = 1;
  if (!deadline.infinite()) {
    double remaining = deadline.RemainingMillis(request.arrival.ElapsedMillis());
    opts.time_budget_ms = remaining > 0 ? remaining : 0.001;
  }
  facade->set_options(opts);
  Result<AnswerResult> result = facade->AnswerWithReport(request.query);
  PushFacade(facade);

  const double service_ms = service.ElapsedMillis();
  out.answer = MakeAnswerFrame(request.request_id, result, service_ms);
  if (metrics_) {
    metrics_->Add("serve.completed");
    metrics_->Observe("serve.service_ms", service_ms);
    if (out.answer.truncated != 0) metrics_->Add("serve.truncated_answers");
  }
  admission_.OnComplete(service_ms);
  done_(std::move(out));
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (--in_flight_ == 0) drain_cv_.notify_all();
}

}  // namespace serve
}  // namespace pdms
