#include "pdms/serve/wire.h"

#include <bit>
#include <cstring>

#include "pdms/util/strings.h"

namespace pdms {
namespace serve {
namespace wire {
namespace {

uint32_t Checksum(std::string_view payload) {
  return static_cast<uint32_t>(Fnv1aHash(payload));
}

// --- Little-endian payload writer ---

class PayloadWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLE(v); }
  void U32(uint32_t v) { AppendLE(v); }
  void U64(uint64_t v) { AppendLE(v); }
  void I64(int64_t v) { AppendLE(static_cast<uint64_t>(v)); }
  void F64(double v) { AppendLE(std::bit_cast<uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Val(const Value& v) {
    U8(static_cast<uint8_t>(v.kind()));
    switch (v.kind()) {
      case Value::Kind::kNull:
        I64(v.null_id());
        break;
      case Value::Kind::kInt:
        I64(v.int_value());
        break;
      case Value::Kind::kString:
        Str(v.string_value());
        break;
    }
  }
  void TupleRow(const Tuple& t) {
    for (const Value& v : t) Val(v);
  }

  std::string Take() { return std::move(out_); }

 private:
  template <typename T>
  void AppendLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

// --- Bounds-checked little-endian payload reader ---
//
// Every Read* checks the bytes remaining before touching the buffer, and
// ReadString validates the declared length against both the string cap and
// the remaining payload before any allocation. Decoders therefore cannot
// be driven past the payload or into attacker-sized reserves.

class PayloadCursor {
 public:
  PayloadCursor(std::string_view payload, const Limits& limits)
      : payload_(payload), limits_(limits) {}

  size_t remaining() const { return payload_.size() - pos_; }
  bool AtEnd() const { return pos_ == payload_.size(); }

  Status ReadU8(uint8_t* out) {
    PDMS_RETURN_IF_ERROR(Need(1, "u8"));
    *out = static_cast<uint8_t>(payload_[pos_++]);
    return Status::Ok();
  }
  Status ReadU16(uint16_t* out) { return ReadLE(out); }
  Status ReadU32(uint32_t* out) { return ReadLE(out); }
  Status ReadU64(uint64_t* out) { return ReadLE(out); }
  Status ReadI64(int64_t* out) {
    uint64_t raw;
    PDMS_RETURN_IF_ERROR(ReadLE(&raw));
    *out = static_cast<int64_t>(raw);
    return Status::Ok();
  }
  Status ReadF64(double* out) {
    uint64_t raw;
    PDMS_RETURN_IF_ERROR(ReadLE(&raw));
    *out = std::bit_cast<double>(raw);
    return Status::Ok();
  }

  Status ReadString(std::string* out) {
    uint32_t len;
    PDMS_RETURN_IF_ERROR(ReadU32(&len));
    if (len > limits_.max_string_bytes) {
      return Status::InvalidArgument(
          StrFormat("string length %u exceeds cap %zu", len,
                    limits_.max_string_bytes));
    }
    PDMS_RETURN_IF_ERROR(Need(len, "string body"));
    out->assign(payload_.data() + pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  Status ReadValue(Value* out) {
    uint8_t kind;
    PDMS_RETURN_IF_ERROR(ReadU8(&kind));
    switch (kind) {
      case static_cast<uint8_t>(Value::Kind::kNull): {
        int64_t id;
        PDMS_RETURN_IF_ERROR(ReadI64(&id));
        *out = Value::Null(id);
        return Status::Ok();
      }
      case static_cast<uint8_t>(Value::Kind::kInt): {
        int64_t v;
        PDMS_RETURN_IF_ERROR(ReadI64(&v));
        *out = Value::Int(v);
        return Status::Ok();
      }
      case static_cast<uint8_t>(Value::Kind::kString): {
        std::string s;
        PDMS_RETURN_IF_ERROR(ReadString(&s));
        *out = Value::String(std::move(s));
        return Status::Ok();
      }
      default:
        return Status::InvalidArgument(
            StrFormat("unknown value kind %u", kind));
    }
  }

  /// Reads `count` tuples of `arity` values each into `*out`. `count` and
  /// `arity` come off the wire: the caller has already checked the
  /// minimum-encoding bound, and this reads value-by-value so a lying
  /// count simply runs out of payload and errors — storage grows only as
  /// real bytes are consumed, never from the declared count.
  Status ReadTuples(uint64_t count, uint32_t arity,
                    std::vector<Tuple>* out) {
    for (uint64_t i = 0; i < count; ++i) {
      Tuple t;
      t.reserve(arity);
      for (uint32_t j = 0; j < arity; ++j) {
        Value v;
        PDMS_RETURN_IF_ERROR(ReadValue(&v));
        t.push_back(std::move(v));
      }
      out->push_back(std::move(t));
    }
    return Status::Ok();
  }

  /// Rejects a declared element count whose minimum possible encoding
  /// (`min_bytes_each` per element) cannot fit in the remaining payload —
  /// the decode-before-allocate guard for tuple/string-list counts.
  Status CheckCount(uint64_t count, size_t min_bytes_each,
                    const char* what) {
    if (min_bytes_each == 0) min_bytes_each = 1;
    if (count > remaining() / min_bytes_each) {
      return Status::InvalidArgument(
          StrFormat("declared %s count %llu cannot fit in %zu remaining "
                    "payload bytes",
                    what, static_cast<unsigned long long>(count),
                    remaining()));
    }
    return Status::Ok();
  }

  Status ExpectEnd() const {
    if (!AtEnd()) {
      return Status::InvalidArgument(
          StrFormat("%zu trailing bytes after payload", remaining()));
    }
    return Status::Ok();
  }

 private:
  Status Need(size_t n, const char* what) const {
    if (remaining() < n) {
      return Status::InvalidArgument(
          StrFormat("truncated payload: need %zu bytes for %s, have %zu", n,
                    what, remaining()));
    }
    return Status::Ok();
  }

  template <typename T>
  Status ReadLE(T* out) {
    PDMS_RETURN_IF_ERROR(Need(sizeof(T), "integer"));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(payload_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::Ok();
  }

  std::string_view payload_;
  Limits limits_;
  size_t pos_ = 0;
};

Status ExpectType(const Frame& frame, FrameType want) {
  if (frame.type != want) {
    return Status::InvalidArgument(
        StrFormat("expected %s frame, got %s", FrameTypeName(want),
                  FrameTypeName(frame.type)));
  }
  return Status::Ok();
}

void WriteStringList(PayloadWriter& w, const std::vector<std::string>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) w.Str(s);
}

Status ReadStringList(PayloadCursor& cur, std::vector<std::string>* out,
                      const char* what) {
  uint32_t count;
  PDMS_RETURN_IF_ERROR(cur.ReadU32(&count));
  // Minimum encoding of a string is its 4-byte length prefix.
  PDMS_RETURN_IF_ERROR(cur.CheckCount(count, 4, what));
  for (uint32_t i = 0; i < count; ++i) {
    std::string s;
    PDMS_RETURN_IF_ERROR(cur.ReadString(&s));
    out->push_back(std::move(s));
  }
  return Status::Ok();
}

/// Shared tuple-block decoder (answer frames and scan responses): reads
/// `arity` then `tuple_count` and applies the satellite-1 hardening
/// bounds before a single tuple is materialized.
Status ReadTupleBlock(PayloadCursor& cur, uint32_t* arity,
                      std::vector<Tuple>* tuples) {
  PDMS_RETURN_IF_ERROR(cur.ReadU32(arity));
  if (*arity > sim::kMaxMessageArity) {
    return Status::InvalidArgument(
        StrFormat("declared arity %u exceeds cap %zu", *arity,
                  sim::kMaxMessageArity));
  }
  uint64_t count;
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&count));
  if (*arity == 0) {
    // Set semantics admit at most one empty tuple; without this, a tiny
    // frame declaring arity 0 and a huge count would expand into
    // count-many empty tuples with no payload bytes to back them.
    if (count > 1) {
      return Status::InvalidArgument(
          StrFormat("arity-0 relation declares %llu tuples (max 1)",
                    static_cast<unsigned long long>(count)));
    }
  } else {
    PDMS_RETURN_IF_ERROR(cur.CheckCount(
        count, static_cast<size_t>(*arity) * kMinValueBytes, "tuple"));
  }
  return cur.ReadTuples(count, *arity, tuples);
}

void WriteTupleBlock(PayloadWriter& w, uint32_t arity,
                     const std::vector<Tuple>& tuples) {
  w.U32(arity);
  w.U64(tuples.size());
  for (const Tuple& t : tuples) w.TupleRow(t);
}

// --- Trace extension (payload prefix under kFlagTrace) ---
//
// The frame type fixes the format: requests carry a TraceEnvelope,
// responses a SpanBlock. Both are length-delimited through the same
// bounds-checked cursor as everything else, so a forged span count or
// attribute count dies on CheckCount before any storage is sized.

/// Minimum encoding of one span: id + parent (u64 each), empty name (u32
/// length), start/end (f64 each), zero attributes (u32 count).
constexpr size_t kMinSpanBytes = 8 + 8 + 4 + 8 + 8 + 4;

void WriteEnvelope(PayloadWriter& w, const TraceEnvelope& envelope) {
  w.Str(envelope.trace_id);
  w.U64(envelope.parent_span);
}

Status ReadEnvelope(PayloadCursor& cur, TraceEnvelope* out) {
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out->trace_id));
  return cur.ReadU64(&out->parent_span);
}

void WriteSpanBlock(PayloadWriter& w, const SpanBlock& block) {
  w.Str(block.trace_id);
  w.U32(static_cast<uint32_t>(block.spans.size()));
  for (const obs::Span& s : block.spans) {
    w.U64(s.id);
    w.U64(s.parent);
    w.Str(s.name);
    w.F64(s.start_ms);
    w.F64(s.end_ms);
    w.U32(static_cast<uint32_t>(s.attributes.size()));
    for (const auto& [key, value] : s.attributes) {
      w.Str(key);
      w.Str(value);
    }
  }
}

Status ReadSpanBlock(PayloadCursor& cur, SpanBlock* out) {
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out->trace_id));
  uint32_t count;
  PDMS_RETURN_IF_ERROR(cur.ReadU32(&count));
  PDMS_RETURN_IF_ERROR(cur.CheckCount(count, kMinSpanBytes, "span"));
  for (uint32_t i = 0; i < count; ++i) {
    obs::Span span;
    PDMS_RETURN_IF_ERROR(cur.ReadU64(&span.id));
    PDMS_RETURN_IF_ERROR(cur.ReadU64(&span.parent));
    PDMS_RETURN_IF_ERROR(cur.ReadString(&span.name));
    PDMS_RETURN_IF_ERROR(cur.ReadF64(&span.start_ms));
    PDMS_RETURN_IF_ERROR(cur.ReadF64(&span.end_ms));
    uint32_t attrs;
    PDMS_RETURN_IF_ERROR(cur.ReadU32(&attrs));
    // Minimum attribute encoding: two empty strings (u32 length each).
    PDMS_RETURN_IF_ERROR(cur.CheckCount(attrs, 8, "span attribute"));
    for (uint32_t j = 0; j < attrs; ++j) {
      std::string key, value;
      PDMS_RETURN_IF_ERROR(cur.ReadString(&key));
      PDMS_RETURN_IF_ERROR(cur.ReadString(&value));
      span.attributes.emplace_back(std::move(key), std::move(value));
    }
    out->spans.push_back(std::move(span));
  }
  return Status::Ok();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery:
      return "query";
    case FrameType::kAnswer:
      return "answer";
    case FrameType::kShed:
      return "shed";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kScanRequest:
      return "scan-request";
    case FrameType::kScanResponse:
      return "scan-response";
    case FrameType::kStatsRequest:
      return "stats-request";
    case FrameType::kStatsResponse:
      return "stats-response";
  }
  return "unknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue-full";
    case ShedReason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

Status AnswerFrame::status() const {
  return Status(static_cast<StatusCode>(status_code), status_message);
}

Relation AnswerFrame::ToRelation() const {
  Relation out(relation_name, arity);
  for (const Tuple& t : tuples) out.Insert(t);
  return out;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  return EncodeFrame(type, payload, kVersion, /*flags=*/0);
}

std::string EncodeFrame(FrameType type, std::string_view payload,
                        uint8_t version, uint16_t flags) {
  PayloadWriter header;
  header.U8(static_cast<uint8_t>(kMagic[0]));
  header.U8(static_cast<uint8_t>(kMagic[1]));
  header.U8(static_cast<uint8_t>(kMagic[2]));
  header.U8(static_cast<uint8_t>(kMagic[3]));
  header.U8(version);
  header.U8(static_cast<uint8_t>(type));
  header.U16(flags);
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(Checksum(payload));
  std::string out = header.Take();
  out.append(payload);
  return out;
}

namespace {

/// A traced payload becomes a version-2 frame; everything else stays on
/// the version-1 encoding, byte-identical to the pre-telemetry protocol.
std::string FinishFrame(FrameType type, std::string payload, bool traced) {
  return traced
             ? EncodeFrame(type, payload, kVersionTraced, kFlagTrace)
             : EncodeFrame(type, payload);
}

}  // namespace

std::string EncodeQuery(const QueryFrame& frame) {
  PayloadWriter w;
  if (frame.trace.has_value()) WriteEnvelope(w, *frame.trace);
  w.U64(frame.request_id);
  w.F64(frame.budget_ms);
  w.Str(frame.query);
  return FinishFrame(FrameType::kQuery, w.Take(), frame.trace.has_value());
}

std::string EncodeAnswer(const AnswerFrame& frame) {
  PayloadWriter w;
  if (frame.spans.has_value()) WriteSpanBlock(w, *frame.spans);
  w.U64(frame.request_id);
  w.U32(frame.status_code);
  w.Str(frame.status_message);
  w.U8(frame.completeness);
  w.U8(frame.truncated);
  w.U64(frame.rewritings_skipped);
  w.U64(frame.branches_pruned);
  w.F64(frame.server_ms);
  WriteStringList(w, frame.excluded_peers);
  WriteStringList(w, frame.excluded_stored);
  w.Str(frame.relation_name);
  WriteTupleBlock(w, frame.arity, frame.tuples);
  return FinishFrame(FrameType::kAnswer, w.Take(), frame.spans.has_value());
}

std::string EncodeShed(const ShedFrame& frame) {
  PayloadWriter w;
  w.U64(frame.request_id);
  w.U8(static_cast<uint8_t>(frame.reason));
  w.F64(frame.retry_after_ms);
  w.U32(frame.queue_depth);
  w.Str(frame.message);
  return EncodeFrame(FrameType::kShed, w.Take());
}

std::string EncodePing(uint64_t request_id) {
  PayloadWriter w;
  w.U64(request_id);
  return EncodeFrame(FrameType::kPing, w.Take());
}

std::string EncodePong(uint64_t request_id) {
  PayloadWriter w;
  w.U64(request_id);
  return EncodeFrame(FrameType::kPong, w.Take());
}

std::string EncodeScan(const sim::Message& message) {
  return EncodeScanFrame(ScanFrame{message, std::nullopt, std::nullopt});
}

std::string EncodeScanFrame(const ScanFrame& frame) {
  const sim::Message& message = frame.message;
  PayloadWriter w;
  if (message.type == sim::Message::Type::kScanRequest) {
    if (frame.trace.has_value()) WriteEnvelope(w, *frame.trace);
    w.U64(message.request_id);
    w.Str(message.relation);
    return FinishFrame(FrameType::kScanRequest, w.Take(),
                       frame.trace.has_value());
  }
  if (frame.spans.has_value()) WriteSpanBlock(w, *frame.spans);
  w.U64(message.request_id);
  w.Str(message.relation);
  w.U32(static_cast<uint32_t>(message.status.code()));
  w.Str(message.status.message());
  WriteTupleBlock(w, static_cast<uint32_t>(message.arity), message.tuples);
  return FinishFrame(FrameType::kScanResponse, w.Take(),
                     frame.spans.has_value());
}

std::string EncodeStatsRequest(uint64_t request_id) {
  PayloadWriter w;
  w.U64(request_id);
  return EncodeFrame(FrameType::kStatsRequest, w.Take());
}

std::string EncodeStatsResponse(const StatsResponseFrame& frame) {
  PayloadWriter w;
  w.U64(frame.request_id);
  w.Str(frame.json);
  return EncodeFrame(FrameType::kStatsResponse, w.Take());
}

Result<QueryFrame> DecodeQuery(const Frame& frame, const Limits& limits) {
  PDMS_RETURN_IF_ERROR(ExpectType(frame, FrameType::kQuery));
  PayloadCursor cur(frame.payload, limits);
  QueryFrame out;
  if (frame.flags & kFlagTrace) {
    TraceEnvelope envelope;
    PDMS_RETURN_IF_ERROR(ReadEnvelope(cur, &envelope));
    out.trace = std::move(envelope);
  }
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.request_id));
  PDMS_RETURN_IF_ERROR(cur.ReadF64(&out.budget_ms));
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out.query));
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  return out;
}

Result<AnswerFrame> DecodeAnswer(const Frame& frame, const Limits& limits) {
  PDMS_RETURN_IF_ERROR(ExpectType(frame, FrameType::kAnswer));
  PayloadCursor cur(frame.payload, limits);
  AnswerFrame out;
  if (frame.flags & kFlagTrace) {
    SpanBlock block;
    PDMS_RETURN_IF_ERROR(ReadSpanBlock(cur, &block));
    out.spans = std::move(block);
  }
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.request_id));
  PDMS_RETURN_IF_ERROR(cur.ReadU32(&out.status_code));
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out.status_message));
  PDMS_RETURN_IF_ERROR(cur.ReadU8(&out.completeness));
  PDMS_RETURN_IF_ERROR(cur.ReadU8(&out.truncated));
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.rewritings_skipped));
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.branches_pruned));
  PDMS_RETURN_IF_ERROR(cur.ReadF64(&out.server_ms));
  PDMS_RETURN_IF_ERROR(
      ReadStringList(cur, &out.excluded_peers, "excluded-peer"));
  PDMS_RETURN_IF_ERROR(
      ReadStringList(cur, &out.excluded_stored, "excluded-stored"));
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out.relation_name));
  PDMS_RETURN_IF_ERROR(ReadTupleBlock(cur, &out.arity, &out.tuples));
  for (const Tuple& t : out.tuples) {
    if (t.size() != out.arity) {
      return Status::InvalidArgument("answer tuple arity mismatch");
    }
  }
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  return out;
}

Result<ShedFrame> DecodeShed(const Frame& frame, const Limits& limits) {
  PDMS_RETURN_IF_ERROR(ExpectType(frame, FrameType::kShed));
  PayloadCursor cur(frame.payload, limits);
  ShedFrame out;
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.request_id));
  uint8_t reason;
  PDMS_RETURN_IF_ERROR(cur.ReadU8(&reason));
  if (reason != static_cast<uint8_t>(ShedReason::kQueueFull) &&
      reason != static_cast<uint8_t>(ShedReason::kDeadline)) {
    return Status::InvalidArgument(
        StrFormat("unknown shed reason %u", reason));
  }
  out.reason = static_cast<ShedReason>(reason);
  PDMS_RETURN_IF_ERROR(cur.ReadF64(&out.retry_after_ms));
  PDMS_RETURN_IF_ERROR(cur.ReadU32(&out.queue_depth));
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out.message));
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  return out;
}

Result<uint64_t> DecodePing(const Frame& frame) {
  if (frame.type != FrameType::kPing && frame.type != FrameType::kPong) {
    return Status::InvalidArgument(
        StrFormat("expected ping/pong frame, got %s",
                  FrameTypeName(frame.type)));
  }
  PayloadCursor cur(frame.payload, Limits{});
  uint64_t id;
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&id));
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  return id;
}

Result<sim::Message> DecodeScan(const Frame& frame, const Limits& limits) {
  PDMS_ASSIGN_OR_RETURN(ScanFrame scan, DecodeScanFrame(frame, limits));
  return std::move(scan.message);
}

Result<ScanFrame> DecodeScanFrame(const Frame& frame, const Limits& limits) {
  if (frame.type != FrameType::kScanRequest &&
      frame.type != FrameType::kScanResponse) {
    return Status::InvalidArgument(
        StrFormat("expected scan frame, got %s",
                  FrameTypeName(frame.type)));
  }
  PayloadCursor cur(frame.payload, limits);
  ScanFrame out;
  sim::Message& message = out.message;
  if (frame.type == FrameType::kScanRequest) {
    if (frame.flags & kFlagTrace) {
      TraceEnvelope envelope;
      PDMS_RETURN_IF_ERROR(ReadEnvelope(cur, &envelope));
      out.trace = std::move(envelope);
    }
    message.type = sim::Message::Type::kScanRequest;
    PDMS_RETURN_IF_ERROR(cur.ReadU64(&message.request_id));
    PDMS_RETURN_IF_ERROR(cur.ReadString(&message.relation));
    PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
    PDMS_RETURN_IF_ERROR(message.Validate());
    return out;
  }
  if (frame.flags & kFlagTrace) {
    SpanBlock block;
    PDMS_RETURN_IF_ERROR(ReadSpanBlock(cur, &block));
    out.spans = std::move(block);
  }
  message.type = sim::Message::Type::kScanResponse;
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&message.request_id));
  PDMS_RETURN_IF_ERROR(cur.ReadString(&message.relation));
  uint32_t status_code;
  PDMS_RETURN_IF_ERROR(cur.ReadU32(&status_code));
  std::string status_message;
  PDMS_RETURN_IF_ERROR(cur.ReadString(&status_message));
  message.status =
      Status(static_cast<StatusCode>(status_code), std::move(status_message));
  uint32_t arity;
  PDMS_RETURN_IF_ERROR(ReadTupleBlock(cur, &arity, &message.tuples));
  message.arity = arity;
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  PDMS_RETURN_IF_ERROR(message.Validate());
  return out;
}

Result<StatsRequestFrame> DecodeStatsRequest(const Frame& frame) {
  PDMS_RETURN_IF_ERROR(ExpectType(frame, FrameType::kStatsRequest));
  PayloadCursor cur(frame.payload, Limits{});
  StatsRequestFrame out;
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.request_id));
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  return out;
}

Result<StatsResponseFrame> DecodeStatsResponse(const Frame& frame,
                                               const Limits& limits) {
  PDMS_RETURN_IF_ERROR(ExpectType(frame, FrameType::kStatsResponse));
  PayloadCursor cur(frame.payload, limits);
  StatsResponseFrame out;
  PDMS_RETURN_IF_ERROR(cur.ReadU64(&out.request_id));
  PDMS_RETURN_IF_ERROR(cur.ReadString(&out.json));
  PDMS_RETURN_IF_ERROR(cur.ExpectEnd());
  return out;
}

Result<std::string> ReencodeFrame(const Frame& frame, const Limits& limits) {
  switch (frame.type) {
    case FrameType::kQuery: {
      PDMS_ASSIGN_OR_RETURN(QueryFrame q, DecodeQuery(frame, limits));
      return EncodeQuery(q);
    }
    case FrameType::kAnswer: {
      PDMS_ASSIGN_OR_RETURN(AnswerFrame a, DecodeAnswer(frame, limits));
      return EncodeAnswer(a);
    }
    case FrameType::kShed: {
      PDMS_ASSIGN_OR_RETURN(ShedFrame s, DecodeShed(frame, limits));
      return EncodeShed(s);
    }
    case FrameType::kPing: {
      PDMS_ASSIGN_OR_RETURN(uint64_t id, DecodePing(frame));
      return EncodePing(id);
    }
    case FrameType::kPong: {
      PDMS_ASSIGN_OR_RETURN(uint64_t id, DecodePing(frame));
      return EncodePong(id);
    }
    case FrameType::kScanRequest:
    case FrameType::kScanResponse: {
      PDMS_ASSIGN_OR_RETURN(ScanFrame s, DecodeScanFrame(frame, limits));
      return EncodeScanFrame(s);
    }
    case FrameType::kStatsRequest: {
      PDMS_ASSIGN_OR_RETURN(StatsRequestFrame s, DecodeStatsRequest(frame));
      return EncodeStatsRequest(s.request_id);
    }
    case FrameType::kStatsResponse: {
      PDMS_ASSIGN_OR_RETURN(StatsResponseFrame s,
                            DecodeStatsResponse(frame, limits));
      return EncodeStatsResponse(s);
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown frame type %u", static_cast<uint8_t>(frame.type)));
}

Result<bool> FrameReader::Next(Frame* out) {
  if (failed_) {
    return Status::InvalidArgument("frame reader already failed");
  }
  // Reclaim consumed prefix lazily once it dominates the buffer, keeping
  // Append amortized O(1) without unbounded growth.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffered() < kHeaderBytes) return false;

  const auto fail = [this](std::string msg) -> Result<bool> {
    failed_ = true;
    return Status::InvalidArgument(std::move(msg));
  };

  std::string_view view(buffer_.data() + consumed_, buffered());
  if (std::memcmp(view.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad frame magic");
  }
  const uint8_t version = static_cast<uint8_t>(view[4]);
  if (version != kVersion && version != kVersionTraced) {
    return fail(StrFormat("unsupported protocol version %u", version));
  }
  const uint8_t raw_type = static_cast<uint8_t>(view[5]);
  if (raw_type < static_cast<uint8_t>(FrameType::kQuery) ||
      raw_type > static_cast<uint8_t>(FrameType::kStatsResponse)) {
    return fail(StrFormat("unknown frame type %u", raw_type));
  }
  const uint16_t flags = static_cast<uint16_t>(
      static_cast<uint8_t>(view[6]) |
      (static_cast<uint16_t>(static_cast<uint8_t>(view[7])) << 8));
  if (version == kVersion && flags != 0) {
    // Version 1 predates the flags field — it is still the reserved
    // must-be-zero word there, which is what keeps old decoders safe
    // against flagged frames.
    return fail("nonzero reserved header bytes on version-1 frame");
  }
  if (version == kVersionTraced) {
    if (flags != kFlagTrace) {
      return fail(StrFormat("bad version-2 flags 0x%x", flags));
    }
    const bool traceable =
        raw_type == static_cast<uint8_t>(FrameType::kQuery) ||
        raw_type == static_cast<uint8_t>(FrameType::kAnswer) ||
        raw_type == static_cast<uint8_t>(FrameType::kScanRequest) ||
        raw_type == static_cast<uint8_t>(FrameType::kScanResponse);
    if (!traceable) {
      return fail(StrFormat("trace flag on untraceable %s frame",
                            FrameTypeName(static_cast<FrameType>(raw_type))));
    }
  }
  auto read_u32 = [&view](size_t at) {
    uint32_t v = 0;
    for (size_t i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(view[at + i]))
           << (8 * i);
    }
    return v;
  };
  const uint32_t payload_len = read_u32(8);
  if (payload_len > limits_.max_payload_bytes) {
    // Rejected from the header alone — the oversized payload is never
    // buffered past the connection layer's read cap.
    return fail(StrFormat("declared payload %u exceeds cap %zu", payload_len,
                          limits_.max_payload_bytes));
  }
  if (buffered() < kHeaderBytes + payload_len) return false;

  const uint32_t declared_checksum = read_u32(12);
  std::string_view payload = view.substr(kHeaderBytes, payload_len);
  if (Checksum(payload) != declared_checksum) {
    return fail("frame checksum mismatch");
  }
  out->type = static_cast<FrameType>(raw_type);
  out->version = version;
  out->flags = flags;
  out->payload.assign(payload);
  consumed_ += kHeaderBytes + payload_len;
  return true;
}

}  // namespace wire
}  // namespace serve
}  // namespace pdms
