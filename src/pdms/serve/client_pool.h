#ifndef PDMS_SERVE_CLIENT_POOL_H_
#define PDMS_SERVE_CLIENT_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pdms/obs/metrics.h"
#include "pdms/obs/trace.h"
#include "pdms/serve/client.h"
#include "pdms/sim/message.h"
#include "pdms/util/status.h"

namespace pdms {
namespace serve {

/// A keep-alive connection pool over `Client`, keyed by "host:port"
/// endpoint. `Client` is one-connection and not thread-safe, so the pool
/// hands out *exclusive* leases: Checkout either revives an idle pooled
/// connection or dials a fresh one; dropping the lease returns the
/// connection for the next caller (up to `max_idle_per_endpoint`, beyond
/// which it is simply closed).
///
/// A revived connection may have gone stale while idle — the server
/// restarted or closed it — and TCP only reveals that on the next
/// request. `ScanRelation` owns that dance: on a transport-level failure
/// of a *reused* connection it discards the socket and retries exactly
/// once on a fresh dial, so callers see a stale keep-alive socket as at
/// most one extra round-trip, never as an error. Failures on a freshly
/// dialed connection are real and propagate.
///
/// Thread-safe; leased clients are exclusively owned until returned.
class ClientPool {
 public:
  struct Options {
    /// Idle connections retained per endpoint; excess returns are closed.
    size_t max_idle_per_endpoint = 4;
    /// I/O timeout applied to dials and all subsequent sends/receives.
    double io_timeout_ms = 5000;
  };

  /// `metrics` (borrowed, nullable) receives serve.pool_dials /
  /// serve.pool_reuses / serve.pool_discards counters.
  ClientPool() : metrics_(nullptr) {}
  explicit ClientPool(Options options, obs::MetricsRegistry* metrics = nullptr)
      : options_(options), metrics_(metrics) {}

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// An exclusive connection lease. Destruction returns the connection to
  /// the pool unless Discard() was called (or the client disconnected).
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        endpoint_ = std::move(other.endpoint_);
        client_ = std::move(other.client_);
        reused_ = other.reused_;
        other.pool_ = nullptr;
      }
      return *this;
    }

    Client* operator->() { return client_.get(); }
    Client& operator*() { return *client_; }
    bool valid() const { return client_ != nullptr; }
    /// True when this lease revived an idle pooled connection (which may
    /// therefore be stale) rather than dialing fresh.
    bool reused() const { return reused_; }
    /// Closes the connection instead of returning it — call after any
    /// transport-level failure so a poisoned socket never re-enters the
    /// pool.
    void Discard();

   private:
    friend class ClientPool;
    Lease(ClientPool* pool, std::string endpoint,
          std::unique_ptr<Client> client, bool reused)
        : pool_(pool),
          endpoint_(std::move(endpoint)),
          client_(std::move(client)),
          reused_(reused) {}
    void Release();

    ClientPool* pool_ = nullptr;
    std::string endpoint_;
    std::unique_ptr<Client> client_;
    bool reused_ = false;
  };

  /// Checks out a connection to `endpoint` ("host:port"), reviving an
  /// idle one when available. `force_fresh` skips the idle list — the
  /// retry path uses it so a retry never lands on another stale socket.
  Result<Lease> Checkout(const std::string& endpoint,
                         bool force_fresh = false);

  /// Scans `relation` through a pooled connection with the
  /// reconnect-on-stale retry described above. Transport errors (after
  /// the retry) propagate as the status; relation-level errors ride in
  /// the returned message's own `status`, exactly like
  /// Client::ScanRelation.
  Result<sim::Message> ScanRelation(const std::string& endpoint,
                                    const std::string& relation,
                                    obs::TraceContext* trace = nullptr,
                                    bool* reconnected = nullptr);

  /// Splits "host:port" (the host may itself contain ':' only if the last
  /// segment parses as a port — matching the executor's convention).
  static Status ParseEndpoint(const std::string& endpoint, std::string* host,
                              uint16_t* port);

  size_t idle_count() const;
  uint64_t dials() const;
  uint64_t reuses() const;
  uint64_t discards() const;

 private:
  void Return(const std::string& endpoint, std::unique_ptr<Client> client);

  Options options_;
  obs::MetricsRegistry* metrics_;  // not owned; may be null
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::unique_ptr<Client>>> idle_;
  uint64_t dials_ = 0;
  uint64_t reuses_ = 0;
  uint64_t discards_ = 0;
};

}  // namespace serve
}  // namespace pdms

#endif  // PDMS_SERVE_CLIENT_POOL_H_
