#include "pdms/cache/plan_cache.h"

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

std::string PlanCacheStats::ToString() const {
  std::string out;
  out += StrFormat("hits: %zu\n", hits);
  out += StrFormat("misses: %zu\n", misses);
  out += StrFormat("inserts: %zu\n", inserts);
  out += StrFormat("evictions: %zu\n", evictions);
  out += StrFormat("invalidations: %zu\n", invalidations);
  out += StrFormat("inserts dropped (stale): %zu\n", inserts_dropped_stale);
  return out;
}

size_t PlanCache::EnterScope(uint64_t revision, uint64_t epoch) {
  if (has_scope_ && scope_revision_ == revision && scope_epoch_ == epoch) {
    return 0;
  }
  // Both counters are monotonic, so a scope that changed can never come
  // back — everything cached under the old scope is dead forever.
  size_t dropped = has_scope_ ? entries_.size() : 0;
  entries_.Clear();
  stats_.invalidations += dropped;
  has_scope_ = true;
  scope_revision_ = revision;
  scope_epoch_ = epoch;
  return dropped;
}

const PlanCacheHook::Plan* PlanCache::Find(const std::string& canonical_key) {
  const Plan* plan = entries_.Touch(canonical_key);
  if (plan != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return plan;
}

PlanCacheHook::InsertOutcome PlanCache::Insert(const std::string& canonical_key,
                                               Plan plan,
                                               uint64_t current_revision,
                                               uint64_t current_epoch) {
  InsertOutcome outcome;
  if (!has_scope_ || current_revision != scope_revision_ ||
      current_epoch != scope_epoch_) {
    // The network churned between reformulation start and now; the plan
    // was built against a catalog/availability state that no longer
    // exists. Dropping it is always safe (the next query just misses).
    ++stats_.inserts_dropped_stale;
    outcome.dropped_stale = true;
    return outcome;
  }
  size_t bytes = EstimatePlanBytes(canonical_key, plan);
  outcome.evictions = entries_.Put(canonical_key, std::move(plan), bytes);
  stats_.evictions += outcome.evictions;
  ++stats_.inserts;
  outcome.stored = true;
  return outcome;
}

void PlanCache::Clear() { entries_.Clear(); }

void PlanCache::set_budget_bytes(size_t budget_bytes) {
  stats_.evictions += entries_.SetBudget(budget_bytes);
}

size_t PlanCache::EstimatePlanBytes(const std::string& key, const Plan& plan) {
  // A structural estimate: per-term and per-atom flat charges dominate the
  // real footprint (small strings + vector headers); exactness doesn't
  // matter, monotonicity in plan size does.
  size_t bytes = key.size() + sizeof(Plan) + 64;
  for (const ConjunctiveQuery& cq : plan.rewriting.disjuncts()) {
    bytes += 64;  // disjunct overhead
    bytes += 32 * (cq.head().arity() + cq.comparisons().size() * 2);
    for (const Atom& atom : cq.body()) {
      bytes += 48 + atom.predicate().size() + 32 * atom.arity();
    }
  }
  return bytes;
}

}  // namespace cache
}  // namespace pdms
