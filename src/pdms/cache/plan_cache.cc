#include "pdms/cache/plan_cache.h"

#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

std::string PlanCacheStats::ToString() const {
  std::string out;
  out += StrFormat("hits: %zu\n", hits);
  out += StrFormat("misses: %zu\n", misses);
  out += StrFormat("inserts: %zu\n", inserts);
  out += StrFormat("evictions: %zu\n", evictions);
  out += StrFormat("invalidations: %zu\n", invalidations);
  out += StrFormat("inserts dropped (stale): %zu\n", inserts_dropped_stale);
  return out;
}

size_t PlanCache::EnterScope(uint64_t revision, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (has_scope_ && scope_revision_ == revision && scope_epoch_ == epoch) {
    return 0;
  }
  // Both counters are monotonic, so a scope that changed can never come
  // back — everything cached under the old scope is dead forever.
  size_t dropped = has_scope_ ? entries_.size() : 0;
  entries_.Clear();
  stats_.invalidations += dropped;
  has_scope_ = true;
  scope_revision_ = revision;
  scope_epoch_ = epoch;
  return dropped;
}

std::shared_ptr<const PlanCacheHook::Plan> PlanCache::Find(
    const std::string& canonical_key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const Plan>* plan = entries_.Touch(canonical_key);
  if (plan != nullptr) {
    ++stats_.hits;
    return *plan;
  }
  ++stats_.misses;
  return nullptr;
}

PlanCacheHook::InsertOutcome PlanCache::Insert(const std::string& canonical_key,
                                               Plan plan,
                                               uint64_t current_revision,
                                               uint64_t current_epoch) {
  InsertOutcome outcome;
  // The byte estimate walks the whole rewriting; do it outside the lock.
  size_t bytes = EstimatePlanBytes(canonical_key, plan);
  auto shared = std::make_shared<const Plan>(std::move(plan));
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_scope_ || current_revision != scope_revision_ ||
      current_epoch != scope_epoch_) {
    // The network churned between reformulation start and now; the plan
    // was built against a catalog/availability state that no longer
    // exists. Dropping it is always safe (the next query just misses).
    ++stats_.inserts_dropped_stale;
    outcome.dropped_stale = true;
    return outcome;
  }
  outcome.evictions = entries_.Put(canonical_key, std::move(shared), bytes);
  stats_.evictions += outcome.evictions;
  ++stats_.inserts;
  outcome.stored = true;
  return outcome;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.Clear();
}

void PlanCache::set_budget_bytes(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += entries_.SetBudget(budget_bytes);
}

size_t PlanCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.budget_bytes();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.total_bytes();
}

uint64_t PlanCache::scope_revision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scope_revision_;
}

uint64_t PlanCache::scope_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scope_epoch_;
}

size_t PlanCache::EstimatePlanBytes(const std::string& key, const Plan& plan) {
  // A structural estimate: per-term and per-atom flat charges dominate the
  // real footprint (small strings + vector headers); exactness doesn't
  // matter, monotonicity in plan size does.
  size_t bytes = key.size() + sizeof(Plan) + 64;
  for (const ConjunctiveQuery& cq : plan.rewriting.disjuncts()) {
    bytes += 64;  // disjunct overhead
    bytes += 32 * (cq.head().arity() + cq.comparisons().size() * 2);
    for (const Atom& atom : cq.body()) {
      bytes += 48 + atom.predicate().size() + 32 * atom.arity();
    }
  }
  return bytes;
}

}  // namespace cache
}  // namespace pdms
