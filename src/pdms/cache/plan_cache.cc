#include "pdms/cache/plan_cache.h"

#include <utility>
#include <vector>

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

std::string PlanCacheStats::ToString() const {
  std::string out;
  out += StrFormat("hits: %zu\n", hits);
  out += StrFormat("misses: %zu\n", misses);
  out += StrFormat("inserts: %zu\n", inserts);
  out += StrFormat("evictions: %zu\n", evictions);
  out += StrFormat("invalidations: %zu\n", invalidations);
  out += StrFormat("inserts dropped (stale): %zu\n", inserts_dropped_stale);
  return out;
}

size_t PlanCache::ClearLocked() {
  size_t dropped = entries_.size();
  entries_.Clear();
  deps_.Clear();
  analyzer_.Reset();
  return dropped;
}

size_t PlanCache::EnterScope(const CacheScope& scope) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  if (wholesale_ || scope.network == nullptr) {
    // No change log to consult (or tracking disabled): any scope movement
    // kills everything, the original all-or-nothing behavior.
    bool same = has_scope_ && scope_revision_ == scope.revision &&
                scope_epoch_ == scope.epoch &&
                scope_fingerprint_ == scope.options_fingerprint;
    if (!same) dropped = ClearLocked();
  } else {
    ChangeAnalysis analysis = analyzer_.Advance(scope);
    if (analysis.full_reset) {
      dropped = ClearLocked();
      // ClearLocked reset the analyzer; re-prime it on the new scope so
      // the next Advance sees a continuous history.
      analyzer_.Advance(scope);
    } else if (!analysis.affected_predicates.empty()) {
      // Plans are id-insensitive: match on predicates only (SIZE_MAX
      // disables the id-threshold criterion).
      for (const std::string& key :
           deps_.Match(analysis.affected_predicates, SIZE_MAX)) {
        if (entries_.Erase(key)) ++dropped;
        deps_.Remove(key);
      }
    }
  }
  stats_.invalidations += dropped;
  has_scope_ = true;
  scope_revision_ = scope.revision;
  scope_epoch_ = scope.epoch;
  scope_fingerprint_ = scope.options_fingerprint;
  return dropped;
}

std::shared_ptr<const PlanCacheHook::Plan> PlanCache::Find(
    const std::string& canonical_key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const Plan>* plan = entries_.Touch(canonical_key);
  if (plan != nullptr) {
    ++stats_.hits;
    return *plan;
  }
  ++stats_.misses;
  return nullptr;
}

PlanCacheHook::InsertOutcome PlanCache::Insert(const std::string& canonical_key,
                                               Plan plan,
                                               uint64_t current_revision,
                                               uint64_t current_epoch) {
  InsertOutcome outcome;
  // The byte estimate walks the whole rewriting; do it outside the lock.
  size_t bytes = EstimatePlanBytes(canonical_key, plan);
  auto shared = std::make_shared<const Plan>(std::move(plan));
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_scope_ || current_revision != scope_revision_ ||
      current_epoch != scope_epoch_) {
    // The network churned between reformulation start and now; the plan
    // was built against a catalog/availability state that no longer
    // exists. Dropping it is always safe (the next query just misses).
    ++stats_.inserts_dropped_stale;
    outcome.dropped_stale = true;
    return outcome;
  }
  deps_.Add(canonical_key, shared->stats.deps);
  std::vector<std::string> evicted;
  outcome.evictions =
      entries_.Put(canonical_key, std::move(shared), bytes, &evicted);
  for (const std::string& key : evicted) deps_.Remove(key);
  stats_.evictions += outcome.evictions;
  ++stats_.inserts;
  outcome.stored = true;
  return outcome;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void PlanCache::set_budget_bytes(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> evicted;
  stats_.evictions += entries_.SetBudget(budget_bytes, &evicted);
  for (const std::string& key : evicted) deps_.Remove(key);
}

size_t PlanCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.budget_bytes();
}

void PlanCache::set_wholesale_invalidation(bool wholesale) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wholesale_ == wholesale) return;
  wholesale_ = wholesale;
  // Switching modes mid-stream would leave the analyzer (or the index)
  // with a stale view of the entries; drop everything once.
  ClearLocked();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.total_bytes();
}

uint64_t PlanCache::scope_revision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scope_revision_;
}

uint64_t PlanCache::scope_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scope_epoch_;
}

size_t PlanCache::EstimatePlanBytes(const std::string& key, const Plan& plan) {
  // A structural estimate: per-term and per-atom flat charges dominate the
  // real footprint (small strings + vector headers); exactness doesn't
  // matter, monotonicity in plan size does.
  size_t bytes = key.size() + sizeof(Plan) + 64;
  for (const ConjunctiveQuery& cq : plan.rewriting.disjuncts()) {
    bytes += 64;  // disjunct overhead
    bytes += 32 * (cq.head().arity() + cq.comparisons().size() * 2);
    for (const Atom& atom : cq.body()) {
      bytes += 48 + atom.predicate().size() + 32 * atom.arity();
    }
  }
  for (const std::string& p : plan.stats.deps.predicates) {
    bytes += 48 + p.size();
  }
  bytes += 8 * plan.stats.deps.descriptions.size();
  return bytes;
}

}  // namespace cache
}  // namespace pdms
