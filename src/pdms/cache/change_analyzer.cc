#include "pdms/cache/change_analyzer.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace pdms {
namespace cache {

namespace {

// Predicates whose reachability differs between `before` and `after` —
// appearing, disappearing, or changing depth. Depth matters: the builder
// orders expansions by DepthRank, so a depth shift changes the emitted
// rewriting order even when answerability is unchanged.
void DiffReach(const std::map<std::string, size_t>& before,
               const std::map<std::string, size_t>& after,
               std::set<std::string>* out) {
  for (const auto& [pred, depth] : before) {
    auto it = after.find(pred);
    if (it == after.end() || it->second != depth) out->insert(pred);
  }
  for (const auto& [pred, depth] : after) {
    if (before.count(pred) == 0) out->insert(pred);
  }
}

}  // namespace

void ChangeAnalyzer::FillReach(const ExpansionRules& rules,
                               const std::set<std::string>& unavailable,
                               const std::set<std::string>& allowed,
                               bool ignore_unavailable,
                               std::map<std::string, size_t>* out) {
  std::map<std::string, size_t>& reach = *out;
  reach.clear();
  for (const std::string& s : rules.stored) {
    bool admitted = allowed.empty() || allowed.count(s) > 0;
    bool usable =
        admitted && (ignore_unavailable || unavailable.count(s) == 0);
    if (usable) reach[s] = 0;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ExpansionRules::DefRule& r : rules.rules) {
      size_t depth = 0;
      bool ok = true;
      for (const Atom& b : r.rule.body()) {
        auto it = reach.find(b.predicate());
        if (it == reach.end()) {
          ok = false;
          break;
        }
        depth = std::max(depth, it->second);
      }
      if (!ok) continue;
      const std::string& head = r.rule.head().predicate();
      auto it = reach.find(head);
      if (it == reach.end() || it->second > depth + 1) {
        reach[head] = depth + 1;
        changed = true;
      }
    }
    for (const ExpansionRules::View& v : rules.views) {
      auto hit = reach.find(v.view.head().predicate());
      if (hit == reach.end()) continue;
      size_t depth = hit->second + 1;
      for (const Atom& b : v.view.body()) {
        auto it = reach.find(b.predicate());
        if (it == reach.end() || it->second > depth) {
          reach[b.predicate()] = depth;
          changed = true;
        }
      }
    }
  }
}

void ChangeAnalyzer::Snapshot(const CacheScope& scope) {
  if (!primed_ || revision_ != scope.revision) {
    rules_ = Normalize(*scope.network);
  }
  FillReach(rules_, scope.unavailable_stored, scope.allowed_stored,
            /*ignore_unavailable=*/false, &reach_effective_);
  FillReach(rules_, scope.unavailable_stored, scope.allowed_stored,
            /*ignore_unavailable=*/true, &reach_structural_);
  primed_ = true;
  seq_ = scope.network->change_seq();
  revision_ = scope.revision;
  fingerprint_ = scope.options_fingerprint;
  unavailable_ = scope.unavailable_stored;
  allowed_ = scope.allowed_stored;
}

ChangeAnalysis ChangeAnalyzer::Advance(const CacheScope& scope) {
  ChangeAnalysis analysis;
  if (scope.network == nullptr) {
    // No log to consult: the caller should be in wholesale mode, but stay
    // sound if it isn't.
    Reset();
    analysis.full_reset = true;
    return analysis;
  }
  if (!primed_ || fingerprint_ != scope.options_fingerprint) {
    analysis.full_reset = true;
    Snapshot(scope);
    return analysis;
  }
  std::optional<std::vector<CatalogChange>> delta =
      scope.network->ChangesSince(seq_);
  if (!delta.has_value()) {
    // Log truncated past our cursor (or the network object was swapped
    // for an older one): no way to reconstruct the delta.
    analysis.full_reset = true;
    Snapshot(scope);
    return analysis;
  }
  bool availability_moved = scope.unavailable_stored != unavailable_ ||
                            scope.allowed_stored != allowed_;
  if (delta->empty() && !availability_moved) {
    return analysis;  // quiescent scope: nothing to do
  }
  analysis.changes = delta->size();
  for (const CatalogChange& change : *delta) {
    analysis.affected_predicates.insert(change.predicates.begin(),
                                        change.predicates.end());
    analysis.id_shift_from =
        std::min(analysis.id_shift_from, change.id_shift_from);
  }
  // Caller-level restrictions (ReformulationOptions::unavailable_stored
  // beyond what the network reports, or an allowed_stored edit that left
  // the fingerprint... it doesn't — allow-list changes move the
  // fingerprint) also flip relations without a log entry; the symmetric
  // difference covers them.
  for (const std::string& s : scope.unavailable_stored) {
    if (unavailable_.count(s) == 0) analysis.affected_predicates.insert(s);
  }
  for (const std::string& s : unavailable_) {
    if (scope.unavailable_stored.count(s) == 0) {
      analysis.affected_predicates.insert(s);
    }
  }

  std::map<std::string, size_t> old_effective = std::move(reach_effective_);
  std::map<std::string, size_t> old_structural = std::move(reach_structural_);
  Snapshot(scope);
  DiffReach(old_effective, reach_effective_, &analysis.affected_predicates);
  DiffReach(old_structural, reach_structural_, &analysis.affected_predicates);
  return analysis;
}

void ChangeAnalyzer::Reset() {
  primed_ = false;
  seq_ = 0;
  revision_ = 0;
  fingerprint_.clear();
  unavailable_.clear();
  allowed_.clear();
  rules_ = ExpansionRules{};
  reach_effective_.clear();
  reach_structural_.clear();
}

}  // namespace cache
}  // namespace pdms
