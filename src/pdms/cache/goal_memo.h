#ifndef PDMS_CACHE_GOAL_MEMO_H_
#define PDMS_CACHE_GOAL_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "pdms/cache/change_analyzer.h"
#include "pdms/cache/dependency_index.h"
#include "pdms/cache/lru.h"
#include "pdms/core/rule_goal_tree.h"

namespace pdms {
namespace cache {

/// Lifetime counters of a GoalMemo (same contract as PlanCacheStats:
/// counters survive scope changes).
struct GoalMemoStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t stores = 0;
  size_t evictions = 0;
  size_t invalidations = 0;  // entries dropped by scope changes

  std::string ToString() const;
};

/// Cross-query memo of rule-goal-tree subtree expansions (docs/
/// plan_cache.md). Where the PlanCache reuses a *whole* plan for a
/// repeated query, the memo reuses the Step-2 expansion of one goal atom
/// across *different* queries at the same scope: two queries touching the
/// same region of the mapping graph expand structurally isomorphic goals,
/// and TreeBuilder's memo key (canonical goal atom + interface binding +
/// constraint-label context + cycle path) captures exactly the inputs the
/// expansion depends on. The value is a variable-renamed template subtree
/// the builder rehydrates with fresh variables.
///
/// Invalidation is dependency-tracked like the PlanCache's
/// (docs/churn_invalidation.md), with one extra criterion: memo keys and
/// stored guard paths embed description ids, so besides dropping entries
/// whose footprint predicates a change touched, EnterScope drops every
/// entry whose footprint mentions a description id at or after the
/// change's renumbering threshold. A scope without a network (or
/// `set_wholesale_invalidation(true)`) clears everything whenever
/// (revision, epoch, fingerprint) moves.
///
/// Thread safety: one internal mutex, held only for map manipulation;
/// subtrees are stored by shared_ptr so a Find result survives concurrent
/// eviction. See the PlanCache doc for why a single lock is preferred over
/// sharding.
class GoalMemo : public GoalMemoHook {
 public:
  static constexpr size_t kDefaultBudgetBytes = 32u << 20;  // 32 MiB

  explicit GoalMemo(size_t budget_bytes = kDefaultBudgetBytes)
      : entries_(budget_bytes) {}

  // GoalMemoHook:
  size_t EnterScope(const CacheScope& scope) override;
  std::shared_ptr<const GoalSubtree> Find(const std::string& key) override;
  void Store(const std::string& key, GoalSubtree subtree) override;

  void Clear();
  void set_budget_bytes(size_t budget_bytes);
  size_t budget_bytes() const;

  /// Disables dependency tracking (the churn tests' negative control).
  void set_wholesale_invalidation(bool wholesale);

  /// A point-in-time snapshot of the lifetime counters.
  GoalMemoStats stats() const;
  size_t size() const;
  size_t total_bytes() const;

 private:
  /// Clears entries + index + analyzer snapshots; returns entries dropped.
  /// Caller holds mu_.
  size_t ClearLocked();

  mutable std::mutex mu_;
  LruByteMap<std::shared_ptr<const GoalSubtree>> entries_;
  DependencyIndex deps_;
  ChangeAnalyzer analyzer_;
  GoalMemoStats stats_;
  bool wholesale_ = false;
  bool has_scope_ = false;
  uint64_t scope_revision_ = 0;
  uint64_t scope_epoch_ = 0;
  std::string scope_fingerprint_;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_GOAL_MEMO_H_
