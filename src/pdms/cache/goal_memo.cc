#include "pdms/cache/goal_memo.h"

#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

std::string GoalMemoStats::ToString() const {
  std::string out;
  out += StrFormat("hits: %zu\n", hits);
  out += StrFormat("misses: %zu\n", misses);
  out += StrFormat("stores: %zu\n", stores);
  out += StrFormat("evictions: %zu\n", evictions);
  out += StrFormat("invalidations: %zu\n", invalidations);
  return out;
}

size_t GoalMemo::EnterScope(uint64_t revision, uint64_t epoch,
                            const std::string& options_fingerprint) {
  if (has_scope_ && scope_revision_ == revision && scope_epoch_ == epoch &&
      scope_fingerprint_ == options_fingerprint) {
    return 0;
  }
  size_t dropped = has_scope_ ? entries_.size() : 0;
  entries_.Clear();
  stats_.invalidations += dropped;
  has_scope_ = true;
  scope_revision_ = revision;
  scope_epoch_ = epoch;
  scope_fingerprint_ = options_fingerprint;
  return dropped;
}

const GoalSubtree* GoalMemo::Find(const std::string& key) {
  const GoalSubtree* subtree = entries_.Touch(key);
  if (subtree != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return subtree;
}

void GoalMemo::Store(const std::string& key, GoalSubtree subtree) {
  size_t bytes = key.size() + subtree.byte_estimate + 64;
  stats_.evictions += entries_.Put(key, std::move(subtree), bytes);
  ++stats_.stores;
}

void GoalMemo::Clear() { entries_.Clear(); }

void GoalMemo::set_budget_bytes(size_t budget_bytes) {
  stats_.evictions += entries_.SetBudget(budget_bytes);
}

}  // namespace cache
}  // namespace pdms
