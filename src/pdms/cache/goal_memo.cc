#include "pdms/cache/goal_memo.h"

#include <utility>
#include <vector>

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

std::string GoalMemoStats::ToString() const {
  std::string out;
  out += StrFormat("hits: %zu\n", hits);
  out += StrFormat("misses: %zu\n", misses);
  out += StrFormat("stores: %zu\n", stores);
  out += StrFormat("evictions: %zu\n", evictions);
  out += StrFormat("invalidations: %zu\n", invalidations);
  return out;
}

size_t GoalMemo::ClearLocked() {
  size_t dropped = entries_.size();
  entries_.Clear();
  deps_.Clear();
  analyzer_.Reset();
  return dropped;
}

size_t GoalMemo::EnterScope(const CacheScope& scope) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  if (wholesale_ || scope.network == nullptr) {
    bool same = has_scope_ && scope_revision_ == scope.revision &&
                scope_epoch_ == scope.epoch &&
                scope_fingerprint_ == scope.options_fingerprint;
    if (!same) dropped = ClearLocked();
  } else {
    ChangeAnalysis analysis = analyzer_.Advance(scope);
    if (analysis.full_reset) {
      dropped = ClearLocked();
      analyzer_.Advance(scope);  // re-prime after the reset
    } else if (!analysis.affected_predicates.empty() ||
               analysis.id_shift_from != SIZE_MAX) {
      // Unlike plans, memoized subtrees embed description ids (guard
      // paths), so a renumbering threshold also stales entries.
      for (const std::string& key :
           deps_.Match(analysis.affected_predicates, analysis.id_shift_from)) {
        if (entries_.Erase(key)) ++dropped;
        deps_.Remove(key);
      }
    }
  }
  stats_.invalidations += dropped;
  has_scope_ = true;
  scope_revision_ = scope.revision;
  scope_epoch_ = scope.epoch;
  scope_fingerprint_ = scope.options_fingerprint;
  return dropped;
}

std::shared_ptr<const GoalSubtree> GoalMemo::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const GoalSubtree>* subtree = entries_.Touch(key);
  if (subtree != nullptr) {
    ++stats_.hits;
    return *subtree;
  }
  ++stats_.misses;
  return nullptr;
}

void GoalMemo::Store(const std::string& key, GoalSubtree subtree) {
  size_t bytes = key.size() + subtree.byte_estimate + 64;
  auto shared = std::make_shared<const GoalSubtree>(std::move(subtree));
  std::lock_guard<std::mutex> lock(mu_);
  deps_.Add(key, shared->deps);
  std::vector<std::string> evicted;
  stats_.evictions += entries_.Put(key, std::move(shared), bytes, &evicted);
  for (const std::string& victim : evicted) deps_.Remove(victim);
  ++stats_.stores;
}

void GoalMemo::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void GoalMemo::set_budget_bytes(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> evicted;
  stats_.evictions += entries_.SetBudget(budget_bytes, &evicted);
  for (const std::string& victim : evicted) deps_.Remove(victim);
}

size_t GoalMemo::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.budget_bytes();
}

void GoalMemo::set_wholesale_invalidation(bool wholesale) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wholesale_ == wholesale) return;
  wholesale_ = wholesale;
  ClearLocked();
}

GoalMemoStats GoalMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t GoalMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t GoalMemo::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.total_bytes();
}

}  // namespace cache
}  // namespace pdms
