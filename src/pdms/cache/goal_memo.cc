#include "pdms/cache/goal_memo.h"

#include <utility>

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

std::string GoalMemoStats::ToString() const {
  std::string out;
  out += StrFormat("hits: %zu\n", hits);
  out += StrFormat("misses: %zu\n", misses);
  out += StrFormat("stores: %zu\n", stores);
  out += StrFormat("evictions: %zu\n", evictions);
  out += StrFormat("invalidations: %zu\n", invalidations);
  return out;
}

size_t GoalMemo::EnterScope(uint64_t revision, uint64_t epoch,
                            const std::string& options_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (has_scope_ && scope_revision_ == revision && scope_epoch_ == epoch &&
      scope_fingerprint_ == options_fingerprint) {
    return 0;
  }
  size_t dropped = has_scope_ ? entries_.size() : 0;
  entries_.Clear();
  stats_.invalidations += dropped;
  has_scope_ = true;
  scope_revision_ = revision;
  scope_epoch_ = epoch;
  scope_fingerprint_ = options_fingerprint;
  return dropped;
}

std::shared_ptr<const GoalSubtree> GoalMemo::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const GoalSubtree>* subtree = entries_.Touch(key);
  if (subtree != nullptr) {
    ++stats_.hits;
    return *subtree;
  }
  ++stats_.misses;
  return nullptr;
}

void GoalMemo::Store(const std::string& key, GoalSubtree subtree) {
  size_t bytes = key.size() + subtree.byte_estimate + 64;
  auto shared = std::make_shared<const GoalSubtree>(std::move(subtree));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += entries_.Put(key, std::move(shared), bytes);
  ++stats_.stores;
}

void GoalMemo::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.Clear();
}

void GoalMemo::set_budget_bytes(size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += entries_.SetBudget(budget_bytes);
}

size_t GoalMemo::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.budget_bytes();
}

GoalMemoStats GoalMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t GoalMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t GoalMemo::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.total_bytes();
}

}  // namespace cache
}  // namespace pdms
