#ifndef PDMS_CACHE_PLAN_CACHE_H_
#define PDMS_CACHE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "pdms/cache/change_analyzer.h"
#include "pdms/cache/dependency_index.h"
#include "pdms/cache/lru.h"
#include "pdms/core/pdms.h"

namespace pdms {
namespace cache {

/// Counters a PlanCache accumulates over its lifetime (they survive scope
/// changes — invalidation is itself one of the counters). The facade
/// mirrors most of these into the metrics registry as `cache.*`; these
/// exist so a cache can report on itself without a registry attached
/// (ppl_shell's `cache stats`).
struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t inserts = 0;
  size_t evictions = 0;
  size_t invalidations = 0;          // entries dropped by scope changes
  size_t inserts_dropped_stale = 0;  // mid-churn guard rejections

  std::string ToString() const;
};

/// The cross-query plan cache (docs/plan_cache.md): CanonicalQueryKey →
/// enumerated UCQ rewriting + ReformulationStats, LRU-evicted under a byte
/// budget.
///
/// Invalidation is dependency-tracked (docs/churn_invalidation.md): each
/// plan carries the DepSet footprint its build recorded, registered in an
/// inverted DependencyIndex; EnterScope digests the network's catalog
/// change log through a ChangeAnalyzer and erases exactly the entries
/// whose footprint the changes touch. Plans embed no description ids —
/// rewritings are plain queries over stored relations — so id renumbering
/// alone never stales an entry and the index is matched with predicates
/// only. A scope without a network (or `set_wholesale_invalidation(true)`,
/// kept as the churn tests' negative control) falls back to clearing
/// everything whenever (revision, epoch, fingerprint) moves, which is
/// always sound. Insert re-checks the scope against the network's values
/// *at insert time*: if a flip or mapping edit landed while the plan was
/// being reformulated, the plan describes a network that no longer exists
/// and is dropped (`inserts_dropped_stale`).
///
/// Thread safety: all operations are serialized by one internal mutex,
/// held only for the map manipulation itself (plans are stored by
/// shared_ptr, so no plan is copied under the lock and a Find result stays
/// alive even if a concurrent insert evicts its entry). A single global
/// lock — rather than key sharding — keeps the recency list, the
/// dependency index, and the eviction counters exactly as observable as in
/// the single-threaded cache, which the eviction tests pin down; the
/// critical sections are a few pointer moves, so contention is not where
/// serving time goes (docs/parallel_execution.md).
class PlanCache : public PlanCacheHook {
 public:
  static constexpr size_t kDefaultBudgetBytes = 64u << 20;  // 64 MiB

  explicit PlanCache(size_t budget_bytes = kDefaultBudgetBytes)
      : entries_(budget_bytes) {}

  // PlanCacheHook:
  size_t EnterScope(const CacheScope& scope) override;
  std::shared_ptr<const Plan> Find(const std::string& canonical_key) override;
  InsertOutcome Insert(const std::string& canonical_key, Plan plan,
                       uint64_t current_revision,
                       uint64_t current_epoch) override;

  /// Drops every entry (counters are kept; invalidations not bumped — this
  /// is an operator action, not a coherence event).
  void Clear();

  /// Changes the byte budget, evicting down if needed.
  void set_budget_bytes(size_t budget_bytes);
  size_t budget_bytes() const;

  /// Disables dependency tracking: any scope movement clears everything.
  /// Exists so the churn DST can assert that wholesale clearing cannot
  /// meet the sustained-hit-rate bar that tracked invalidation does.
  void set_wholesale_invalidation(bool wholesale);

  /// A point-in-time snapshot of the lifetime counters.
  PlanCacheStats stats() const;
  size_t size() const;
  size_t total_bytes() const;
  uint64_t scope_revision() const;
  uint64_t scope_epoch() const;

  /// The byte charge used for a plan: a structural estimate of its
  /// rewriting plus the key. Exposed for tests.
  static size_t EstimatePlanBytes(const std::string& key, const Plan& plan);

 private:
  /// Clears entries + index + analyzer snapshots; returns the entry count
  /// dropped. Caller holds mu_.
  size_t ClearLocked();

  mutable std::mutex mu_;
  LruByteMap<std::shared_ptr<const Plan>> entries_;
  DependencyIndex deps_;
  ChangeAnalyzer analyzer_;
  PlanCacheStats stats_;
  bool wholesale_ = false;
  bool has_scope_ = false;
  uint64_t scope_revision_ = 0;
  uint64_t scope_epoch_ = 0;
  std::string scope_fingerprint_;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_PLAN_CACHE_H_
