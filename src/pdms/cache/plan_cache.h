#ifndef PDMS_CACHE_PLAN_CACHE_H_
#define PDMS_CACHE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "pdms/cache/lru.h"
#include "pdms/core/pdms.h"

namespace pdms {
namespace cache {

/// Counters a PlanCache accumulates over its lifetime (they survive scope
/// changes — invalidation is itself one of the counters). The facade
/// mirrors most of these into the metrics registry as `cache.*`; these
/// exist so a cache can report on itself without a registry attached
/// (ppl_shell's `cache stats`).
struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t inserts = 0;
  size_t evictions = 0;
  size_t invalidations = 0;          // entries dropped by scope changes
  size_t inserts_dropped_stale = 0;  // mid-churn guard rejections

  std::string ToString() const;
};

/// The cross-query plan cache (docs/plan_cache.md): CanonicalQueryKey →
/// enumerated UCQ rewriting + ReformulationStats, valid for exactly one
/// (network revision, availability epoch) scope, LRU-evicted under a byte
/// budget.
///
/// Scope handling exploits that both counters are monotonic: a scope that
/// has passed can never return, so EnterScope on a changed scope simply
/// clears the cache — there is no multi-version bookkeeping to get wrong.
/// Insert re-checks the scope against the network's values *at insert
/// time*: if an availability flip or mapping edit landed while the plan
/// was being reformulated, the plan describes a network that no longer
/// exists and is dropped (`inserts_dropped_stale`).
///
/// Thread safety: all operations are serialized by one internal mutex,
/// held only for the map manipulation itself (plans are stored by
/// shared_ptr, so no plan is copied under the lock and a Find result stays
/// alive even if a concurrent insert evicts its entry). A single global
/// lock — rather than key sharding — keeps the recency list and eviction
/// counters exactly as observable as in the single-threaded cache, which
/// the eviction tests pin down; the critical sections are a few pointer
/// moves, so contention is not where serving time goes
/// (docs/parallel_execution.md).
class PlanCache : public PlanCacheHook {
 public:
  static constexpr size_t kDefaultBudgetBytes = 64u << 20;  // 64 MiB

  explicit PlanCache(size_t budget_bytes = kDefaultBudgetBytes)
      : entries_(budget_bytes) {}

  // PlanCacheHook:
  size_t EnterScope(uint64_t revision, uint64_t epoch) override;
  std::shared_ptr<const Plan> Find(const std::string& canonical_key) override;
  InsertOutcome Insert(const std::string& canonical_key, Plan plan,
                       uint64_t current_revision,
                       uint64_t current_epoch) override;

  /// Drops every entry (counters are kept; invalidations not bumped — this
  /// is an operator action, not a coherence event).
  void Clear();

  /// Changes the byte budget, evicting down if needed.
  void set_budget_bytes(size_t budget_bytes);
  size_t budget_bytes() const;

  /// A point-in-time snapshot of the lifetime counters.
  PlanCacheStats stats() const;
  size_t size() const;
  size_t total_bytes() const;
  uint64_t scope_revision() const;
  uint64_t scope_epoch() const;

  /// The byte charge used for a plan: a structural estimate of its
  /// rewriting plus the key. Exposed for tests.
  static size_t EstimatePlanBytes(const std::string& key, const Plan& plan);

 private:
  mutable std::mutex mu_;
  LruByteMap<std::shared_ptr<const Plan>> entries_;
  PlanCacheStats stats_;
  bool has_scope_ = false;
  uint64_t scope_revision_ = 0;
  uint64_t scope_epoch_ = 0;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_PLAN_CACHE_H_
