#include "pdms/cache/caching_pdms.h"

#include "pdms/util/strings.h"

namespace pdms {
namespace cache {

CachingPdms::CachingPdms(CacheConfig config, ReformulationOptions options)
    : pdms_(std::move(options)),
      plan_cache_(config.plan_budget_bytes),
      goal_memo_(config.memo_budget_bytes) {
  pdms_.set_plan_cache(&plan_cache_);
  if (config.enable_goal_memo) pdms_.set_goal_memo(&goal_memo_);
  if (config.wholesale_invalidation) {
    plan_cache_.set_wholesale_invalidation(true);
    goal_memo_.set_wholesale_invalidation(true);
  }
}

void CachingPdms::ClearCaches() {
  plan_cache_.Clear();
  goal_memo_.Clear();
}

void CachingPdms::set_plan_budget_bytes(size_t bytes) {
  plan_cache_.set_budget_bytes(bytes);
}

void CachingPdms::set_memo_budget_bytes(size_t bytes) {
  goal_memo_.set_budget_bytes(bytes);
}

std::string CachingPdms::CacheStatsString() const {
  std::string out;
  out += StrFormat("plan cache (%zu entries, %zu/%zu bytes)\n",
                   plan_cache_.size(), plan_cache_.total_bytes(),
                   plan_cache_.budget_bytes());
  out += plan_cache_.stats().ToString();
  out += StrFormat("goal memo (%zu entries, %zu/%zu bytes)\n",
                   goal_memo_.size(), goal_memo_.total_bytes(),
                   goal_memo_.budget_bytes());
  out += goal_memo_.stats().ToString();
  return out;
}

}  // namespace cache
}  // namespace pdms
