#ifndef PDMS_CACHE_CHANGE_ANALYZER_H_
#define PDMS_CACHE_CHANGE_ANALYZER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "pdms/core/network.h"
#include "pdms/core/normalize.h"
#include "pdms/core/rule_goal_tree.h"

namespace pdms {
namespace cache {

/// What one batch of catalog changes means for a dependency-indexed cache:
/// either "start over" (scope discontinuity — options fingerprint changed,
/// the change log was truncated past our cursor, or the analyzer is
/// unprimed) or a predicate set plus a description-id threshold to hand to
/// DependencyIndex::Match.
struct ChangeAnalysis {
  bool full_reset = false;
  /// Predicates whose expansion candidates or reachability (presence *or*
  /// depth — depth drives expansion ordering) changed. Includes the
  /// changes' direct predicates.
  std::set<std::string> affected_predicates;
  /// Description ids at or after this index were renumbered; id-sensitive
  /// entries (the goal memo embeds ids in guard sets) must drop. SIZE_MAX
  /// = no renumbering.
  size_t id_shift_from = SIZE_MAX;
  /// Raw change-log entries digested (0 = scope was quiescent).
  size_t changes = 0;
};

/// Digests a PdmsNetwork's catalog change log into the minimal
/// invalidation a cache must perform (docs/churn_invalidation.md). The
/// analyzer keeps a cursor into the log plus snapshots of the normalized
/// rules and both reachability fixpoints (effective and
/// as-if-all-available — the tree builder consults both, and either
/// shifting changes what a build produces). Advance() re-runs the
/// fixpoints and diffs them, so a change deep in the topology — say a
/// crashed peer making a distant relation unreachable — propagates to
/// every predicate whose answerability or depth rank it moved, which the
/// changes' direct predicates alone would miss.
///
/// Not thread-safe; the owning cache's mutex serializes it.
class ChangeAnalyzer {
 public:
  /// Digests everything that happened since the last Advance under the
  /// new scope and snapshots it. Null `scope.network` always full-resets
  /// (no log to consult); so does a truncated log or a fingerprint change.
  ChangeAnalysis Advance(const CacheScope& scope);

  /// Forgets all snapshots; the next Advance reports a full reset. Called
  /// when the owning cache clears wholesale for its own reasons.
  void Reset();

 private:
  /// TreeBuilder::FillReachability's fixpoint, replicated over a scope's
  /// restrictions: stored relations usable under (unavailable, allowed)
  /// seed depth 0; rule heads and view body predicates propagate.
  static void FillReach(const ExpansionRules& rules,
                        const std::set<std::string>& unavailable,
                        const std::set<std::string>& allowed,
                        bool ignore_unavailable,
                        std::map<std::string, size_t>* out);

  /// Rebuilds rules (when the revision moved) and both reachability maps
  /// from `scope`, remembering the scope identity.
  void Snapshot(const CacheScope& scope);

  bool primed_ = false;
  uint64_t seq_ = 0;       // change-log cursor (last digested seq)
  uint64_t revision_ = 0;  // revision rules_ was normalized at
  std::string fingerprint_;
  std::set<std::string> unavailable_;
  std::set<std::string> allowed_;
  ExpansionRules rules_;
  std::map<std::string, size_t> reach_effective_;
  std::map<std::string, size_t> reach_structural_;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_CHANGE_ANALYZER_H_
