#ifndef PDMS_CACHE_LRU_H_
#define PDMS_CACHE_LRU_H_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pdms {
namespace cache {

/// A byte-budgeted LRU map from string keys to move-only values. The
/// recency list keeps the most recently touched entry at the front;
/// inserting past the budget evicts from the back until the total charged
/// bytes fit again. The byte charge is whatever the caller passes at Put
/// time (an estimate — the point is a stable, monotone knob, not exact
/// accounting). A single entry larger than the whole budget is admitted
/// and immediately becomes the only entry; it is evicted by the next Put.
template <typename V>
class LruByteMap {
 public:
  explicit LruByteMap(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// The value for `key`, promoted to most-recently-used; null if absent.
  /// The pointer stays valid until the entry is evicted or cleared.
  V* Touch(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  /// Inserts or replaces `key`, charging `bytes` against the budget, then
  /// evicts least-recently-used entries until the budget holds. Returns
  /// the number of entries evicted (not counting a replaced `key`); when
  /// `evicted_keys` is non-null the victims' keys are appended to it so
  /// callers keeping side tables (the dependency index) can stay in sync.
  size_t Put(const std::string& key, V value, size_t bytes,
             std::vector<std::string>* evicted_keys = nullptr) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      total_bytes_ += bytes;
      entries_.splice(entries_.begin(), entries_, it->second);
    } else {
      entries_.push_front(Entry{key, std::move(value), bytes});
      index_[key] = entries_.begin();
      total_bytes_ += bytes;
    }
    return EvictToBudget(/*keep_front=*/true, evicted_keys);
  }

  /// Shrinks (or grows) the budget, evicting as needed. Returns evictions.
  size_t SetBudget(size_t budget_bytes,
                   std::vector<std::string>* evicted_keys = nullptr) {
    budget_bytes_ = budget_bytes;
    return EvictToBudget(/*keep_front=*/false, evicted_keys);
  }

  /// Removes `key` if present (targeted invalidation); true if removed.
  bool Erase(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    total_bytes_ -= it->second->bytes;
    entries_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    total_bytes_ = 0;
  }

  size_t size() const { return entries_.size(); }
  size_t total_bytes() const { return total_bytes_; }
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::string key;
    V value;
    size_t bytes = 0;
  };

  /// Evicts from the LRU end until within budget. With `keep_front` the
  /// just-inserted front entry survives even if it alone exceeds the
  /// budget (so an oversized plan is still usable for the query that
  /// built it).
  size_t EvictToBudget(bool keep_front,
                       std::vector<std::string>* evicted_keys = nullptr) {
    size_t evicted = 0;
    while (total_bytes_ > budget_bytes_ && !entries_.empty() &&
           !(keep_front && entries_.size() == 1)) {
      const Entry& victim = entries_.back();
      total_bytes_ -= victim.bytes;
      if (evicted_keys != nullptr) evicted_keys->push_back(victim.key);
      index_.erase(victim.key);
      entries_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  size_t budget_bytes_;
  size_t total_bytes_ = 0;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_LRU_H_
