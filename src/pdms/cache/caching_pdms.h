#ifndef PDMS_CACHE_CACHING_PDMS_H_
#define PDMS_CACHE_CACHING_PDMS_H_

#include <string>
#include <string_view>

#include "pdms/cache/goal_memo.h"
#include "pdms/cache/plan_cache.h"
#include "pdms/core/pdms.h"

namespace pdms {
namespace cache {

/// Budgets and switches for a CachingPdms.
struct CacheConfig {
  size_t plan_budget_bytes = PlanCache::kDefaultBudgetBytes;
  size_t memo_budget_bytes = GoalMemo::kDefaultBudgetBytes;
  /// The goal memo accelerates cold (plan-miss) reformulations; disable to
  /// measure the plan cache alone.
  bool enable_goal_memo = true;
  /// Revert both caches to wholesale clearing on any scope movement
  /// (pre-dependency-tracking behavior). The churn DST uses this as its
  /// negative control; see docs/churn_invalidation.md.
  bool wholesale_invalidation = false;
};

/// A Pdms bundled with a PlanCache and GoalMemo, pre-wired: every
/// answering entry point gets cross-query plan reuse with revision- and
/// availability-aware invalidation, no further setup. The wrapper *is* a
/// Pdms for all query/mutation purposes (it forwards the facade API and
/// exposes the inner instance for anything else); it adds only cache
/// management.
///
/// Equivalent manual wiring, for callers that want to share caches across
/// several facades (ppl_shell shares them with per-query SimPdms
/// instances):
///
///   PlanCache plans; GoalMemo memo; Pdms pdms;
///   pdms.set_plan_cache(&plans);
///   pdms.set_goal_memo(&memo);
class CachingPdms {
 public:
  explicit CachingPdms(CacheConfig config = {},
                       ReformulationOptions options = {});

  // --- Forwarded facade API ---
  Status LoadProgram(std::string_view text) { return pdms_.LoadProgram(text); }
  Status Insert(std::string_view stored_relation, Tuple tuple) {
    return pdms_.Insert(stored_relation, std::move(tuple));
  }
  PdmsNetwork* mutable_network() { return pdms_.mutable_network(); }
  const PdmsNetwork& network() const { return pdms_.network(); }
  Database* mutable_database() { return pdms_.mutable_database(); }
  const Database& database() const { return pdms_.database(); }
  void set_trace(obs::TraceContext* trace) { pdms_.set_trace(trace); }
  void set_metrics(obs::MetricsRegistry* m) { pdms_.set_metrics(m); }

  Result<ConjunctiveQuery> ParseQuery(std::string_view text) const {
    return pdms_.ParseQuery(text);
  }
  Result<ReformulationResult> Reformulate(const ConjunctiveQuery& query) {
    return pdms_.Reformulate(query);
  }
  Result<Relation> Answer(const ConjunctiveQuery& query) {
    return pdms_.Answer(query);
  }
  Result<Relation> Answer(std::string_view query_text) {
    return pdms_.Answer(query_text);
  }
  Result<AnswerResult> AnswerWithReport(const ConjunctiveQuery& query) {
    return pdms_.AnswerWithReport(query);
  }
  Result<AnswerResult> AnswerWithReport(std::string_view query_text) {
    return pdms_.AnswerWithReport(query_text);
  }

  /// The wrapped facade, for the rest of the Pdms surface (fault knobs,
  /// streaming, oracle, provenance...). The caches stay attached.
  Pdms* pdms() { return &pdms_; }
  const Pdms& pdms() const { return pdms_; }

  // --- Cache management ---
  PlanCache* plan_cache() { return &plan_cache_; }
  GoalMemo* goal_memo() { return &goal_memo_; }

  /// Drops all cached plans and memoized subtrees (counters survive).
  void ClearCaches();
  void set_plan_budget_bytes(size_t bytes);
  void set_memo_budget_bytes(size_t bytes);

  /// Human-readable stats of both caches (ppl_shell's `cache stats`).
  std::string CacheStatsString() const;

 private:
  Pdms pdms_;
  PlanCache plan_cache_;
  GoalMemo goal_memo_;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_CACHING_PDMS_H_
