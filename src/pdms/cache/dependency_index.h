#ifndef PDMS_CACHE_DEPENDENCY_INDEX_H_
#define PDMS_CACHE_DEPENDENCY_INDEX_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdms/core/rule_goal_tree.h"

namespace pdms {
namespace cache {

/// The inverted dependency index behind fine-grained invalidation
/// (docs/churn_invalidation.md): every cache entry registers its DepSet
/// footprint, and a catalog change asks for exactly the keys whose
/// footprint it touches. Two postings structures: predicate → keys for the
/// change's predicate set, and an ordered description-id → keys map so an
/// id renumbering ("every description at or after index i shifted")
/// resolves with one lower_bound walk. Not thread-safe on its own — the
/// owning cache's mutex serializes it along with the entry map.
class DependencyIndex {
 public:
  /// Registers (or re-registers) `key` with its footprint. Replacing an
  /// existing key first unregisters the old footprint.
  void Add(const std::string& key, const DepSet& deps) {
    Remove(key);
    for (const std::string& pred : deps.predicates) {
      by_pred_[pred].insert(key);
    }
    for (size_t id : deps.descriptions) {
      by_desc_[id].insert(key);
    }
    footprints_[key] = deps;
  }

  void Remove(const std::string& key) {
    auto it = footprints_.find(key);
    if (it == footprints_.end()) return;
    for (const std::string& pred : it->second.predicates) {
      auto p = by_pred_.find(pred);
      if (p == by_pred_.end()) continue;
      p->second.erase(key);
      if (p->second.empty()) by_pred_.erase(p);
    }
    for (size_t id : it->second.descriptions) {
      auto d = by_desc_.find(id);
      if (d == by_desc_.end()) continue;
      d->second.erase(key);
      if (d->second.empty()) by_desc_.erase(d);
    }
    footprints_.erase(it);
  }

  /// The keys whose footprint mentions any of `predicates`, or any
  /// description id >= `id_shift_from` (pass SIZE_MAX to skip the id
  /// criterion — plan rewritings embed no ids, so renumbering alone never
  /// stales them). Sorted and deduplicated.
  std::vector<std::string> Match(const std::set<std::string>& predicates,
                                 size_t id_shift_from) const {
    std::set<std::string> keys;
    for (const std::string& pred : predicates) {
      auto it = by_pred_.find(pred);
      if (it == by_pred_.end()) continue;
      keys.insert(it->second.begin(), it->second.end());
    }
    if (id_shift_from != SIZE_MAX) {
      for (auto it = by_desc_.lower_bound(id_shift_from);
           it != by_desc_.end(); ++it) {
        keys.insert(it->second.begin(), it->second.end());
      }
    }
    return std::vector<std::string>(keys.begin(), keys.end());
  }

  void Clear() {
    by_pred_.clear();
    by_desc_.clear();
    footprints_.clear();
  }

  size_t size() const { return footprints_.size(); }

 private:
  std::unordered_map<std::string, std::set<std::string>> by_pred_;
  std::map<size_t, std::set<std::string>> by_desc_;
  std::unordered_map<std::string, DepSet> footprints_;
};

}  // namespace cache
}  // namespace pdms

#endif  // PDMS_CACHE_DEPENDENCY_INDEX_H_
