
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdms/data/database.cc" "src/pdms/data/CMakeFiles/pdms_data.dir/database.cc.o" "gcc" "src/pdms/data/CMakeFiles/pdms_data.dir/database.cc.o.d"
  "/root/repo/src/pdms/data/relation.cc" "src/pdms/data/CMakeFiles/pdms_data.dir/relation.cc.o" "gcc" "src/pdms/data/CMakeFiles/pdms_data.dir/relation.cc.o.d"
  "/root/repo/src/pdms/data/value.cc" "src/pdms/data/CMakeFiles/pdms_data.dir/value.cc.o" "gcc" "src/pdms/data/CMakeFiles/pdms_data.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdms/util/CMakeFiles/pdms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
