file(REMOVE_RECURSE
  "CMakeFiles/pdms_data.dir/database.cc.o"
  "CMakeFiles/pdms_data.dir/database.cc.o.d"
  "CMakeFiles/pdms_data.dir/relation.cc.o"
  "CMakeFiles/pdms_data.dir/relation.cc.o.d"
  "CMakeFiles/pdms_data.dir/value.cc.o"
  "CMakeFiles/pdms_data.dir/value.cc.o.d"
  "libpdms_data.a"
  "libpdms_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
