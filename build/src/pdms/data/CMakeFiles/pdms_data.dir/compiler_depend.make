# Empty compiler generated dependencies file for pdms_data.
# This may be replaced when dependencies are built.
