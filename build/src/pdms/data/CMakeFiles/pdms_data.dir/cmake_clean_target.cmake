file(REMOVE_RECURSE
  "libpdms_data.a"
)
