# Empty dependencies file for pdms_util.
# This may be replaced when dependencies are built.
