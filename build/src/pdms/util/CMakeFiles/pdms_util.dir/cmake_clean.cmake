file(REMOVE_RECURSE
  "CMakeFiles/pdms_util.dir/status.cc.o"
  "CMakeFiles/pdms_util.dir/status.cc.o.d"
  "CMakeFiles/pdms_util.dir/strings.cc.o"
  "CMakeFiles/pdms_util.dir/strings.cc.o.d"
  "libpdms_util.a"
  "libpdms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
