file(REMOVE_RECURSE
  "libpdms_util.a"
)
