file(REMOVE_RECURSE
  "CMakeFiles/pdms_eval.dir/chase.cc.o"
  "CMakeFiles/pdms_eval.dir/chase.cc.o.d"
  "CMakeFiles/pdms_eval.dir/datalog.cc.o"
  "CMakeFiles/pdms_eval.dir/datalog.cc.o.d"
  "CMakeFiles/pdms_eval.dir/evaluator.cc.o"
  "CMakeFiles/pdms_eval.dir/evaluator.cc.o.d"
  "libpdms_eval.a"
  "libpdms_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
