# Empty dependencies file for pdms_eval.
# This may be replaced when dependencies are built.
