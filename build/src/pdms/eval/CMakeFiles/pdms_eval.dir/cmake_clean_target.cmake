file(REMOVE_RECURSE
  "libpdms_eval.a"
)
