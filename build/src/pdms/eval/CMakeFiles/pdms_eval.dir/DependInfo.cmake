
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdms/eval/chase.cc" "src/pdms/eval/CMakeFiles/pdms_eval.dir/chase.cc.o" "gcc" "src/pdms/eval/CMakeFiles/pdms_eval.dir/chase.cc.o.d"
  "/root/repo/src/pdms/eval/datalog.cc" "src/pdms/eval/CMakeFiles/pdms_eval.dir/datalog.cc.o" "gcc" "src/pdms/eval/CMakeFiles/pdms_eval.dir/datalog.cc.o.d"
  "/root/repo/src/pdms/eval/evaluator.cc" "src/pdms/eval/CMakeFiles/pdms_eval.dir/evaluator.cc.o" "gcc" "src/pdms/eval/CMakeFiles/pdms_eval.dir/evaluator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdms/lang/CMakeFiles/pdms_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/data/CMakeFiles/pdms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/util/CMakeFiles/pdms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
