# Empty compiler generated dependencies file for pdms_lang.
# This may be replaced when dependencies are built.
