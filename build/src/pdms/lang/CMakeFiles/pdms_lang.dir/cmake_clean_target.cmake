file(REMOVE_RECURSE
  "libpdms_lang.a"
)
