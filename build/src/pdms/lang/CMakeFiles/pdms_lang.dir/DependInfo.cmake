
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdms/lang/atom.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/atom.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/atom.cc.o.d"
  "/root/repo/src/pdms/lang/canonical.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/canonical.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/canonical.cc.o.d"
  "/root/repo/src/pdms/lang/conjunctive_query.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/conjunctive_query.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/pdms/lang/homomorphism.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/homomorphism.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/homomorphism.cc.o.d"
  "/root/repo/src/pdms/lang/parser.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/parser.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/parser.cc.o.d"
  "/root/repo/src/pdms/lang/substitution.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/substitution.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/substitution.cc.o.d"
  "/root/repo/src/pdms/lang/term.cc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/term.cc.o" "gcc" "src/pdms/lang/CMakeFiles/pdms_lang.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdms/data/CMakeFiles/pdms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/util/CMakeFiles/pdms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
