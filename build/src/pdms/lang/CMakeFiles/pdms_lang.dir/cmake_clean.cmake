file(REMOVE_RECURSE
  "CMakeFiles/pdms_lang.dir/atom.cc.o"
  "CMakeFiles/pdms_lang.dir/atom.cc.o.d"
  "CMakeFiles/pdms_lang.dir/canonical.cc.o"
  "CMakeFiles/pdms_lang.dir/canonical.cc.o.d"
  "CMakeFiles/pdms_lang.dir/conjunctive_query.cc.o"
  "CMakeFiles/pdms_lang.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/pdms_lang.dir/homomorphism.cc.o"
  "CMakeFiles/pdms_lang.dir/homomorphism.cc.o.d"
  "CMakeFiles/pdms_lang.dir/parser.cc.o"
  "CMakeFiles/pdms_lang.dir/parser.cc.o.d"
  "CMakeFiles/pdms_lang.dir/substitution.cc.o"
  "CMakeFiles/pdms_lang.dir/substitution.cc.o.d"
  "CMakeFiles/pdms_lang.dir/term.cc.o"
  "CMakeFiles/pdms_lang.dir/term.cc.o.d"
  "libpdms_lang.a"
  "libpdms_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
