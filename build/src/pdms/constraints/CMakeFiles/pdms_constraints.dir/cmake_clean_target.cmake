file(REMOVE_RECURSE
  "libpdms_constraints.a"
)
