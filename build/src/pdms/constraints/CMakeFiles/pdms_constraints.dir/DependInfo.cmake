
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdms/constraints/constraint_set.cc" "src/pdms/constraints/CMakeFiles/pdms_constraints.dir/constraint_set.cc.o" "gcc" "src/pdms/constraints/CMakeFiles/pdms_constraints.dir/constraint_set.cc.o.d"
  "/root/repo/src/pdms/constraints/cq_containment.cc" "src/pdms/constraints/CMakeFiles/pdms_constraints.dir/cq_containment.cc.o" "gcc" "src/pdms/constraints/CMakeFiles/pdms_constraints.dir/cq_containment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdms/lang/CMakeFiles/pdms_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/util/CMakeFiles/pdms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/data/CMakeFiles/pdms_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
