file(REMOVE_RECURSE
  "CMakeFiles/pdms_constraints.dir/constraint_set.cc.o"
  "CMakeFiles/pdms_constraints.dir/constraint_set.cc.o.d"
  "CMakeFiles/pdms_constraints.dir/cq_containment.cc.o"
  "CMakeFiles/pdms_constraints.dir/cq_containment.cc.o.d"
  "libpdms_constraints.a"
  "libpdms_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
