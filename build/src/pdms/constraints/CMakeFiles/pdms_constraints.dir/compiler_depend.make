# Empty compiler generated dependencies file for pdms_constraints.
# This may be replaced when dependencies are built.
