file(REMOVE_RECURSE
  "libpdms_gen.a"
)
