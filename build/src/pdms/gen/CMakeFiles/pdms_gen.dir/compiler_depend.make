# Empty compiler generated dependencies file for pdms_gen.
# This may be replaced when dependencies are built.
