file(REMOVE_RECURSE
  "CMakeFiles/pdms_gen.dir/emergency.cc.o"
  "CMakeFiles/pdms_gen.dir/emergency.cc.o.d"
  "CMakeFiles/pdms_gen.dir/workload.cc.o"
  "CMakeFiles/pdms_gen.dir/workload.cc.o.d"
  "libpdms_gen.a"
  "libpdms_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
