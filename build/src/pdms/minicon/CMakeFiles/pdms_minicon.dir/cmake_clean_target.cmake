file(REMOVE_RECURSE
  "libpdms_minicon.a"
)
