# Empty dependencies file for pdms_minicon.
# This may be replaced when dependencies are built.
