file(REMOVE_RECURSE
  "CMakeFiles/pdms_minicon.dir/mcd.cc.o"
  "CMakeFiles/pdms_minicon.dir/mcd.cc.o.d"
  "CMakeFiles/pdms_minicon.dir/rewrite.cc.o"
  "CMakeFiles/pdms_minicon.dir/rewrite.cc.o.d"
  "libpdms_minicon.a"
  "libpdms_minicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_minicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
