# Empty dependencies file for pdms_core.
# This may be replaced when dependencies are built.
