file(REMOVE_RECURSE
  "CMakeFiles/pdms_core.dir/certain_answers.cc.o"
  "CMakeFiles/pdms_core.dir/certain_answers.cc.o.d"
  "CMakeFiles/pdms_core.dir/enumerate.cc.o"
  "CMakeFiles/pdms_core.dir/enumerate.cc.o.d"
  "CMakeFiles/pdms_core.dir/network.cc.o"
  "CMakeFiles/pdms_core.dir/network.cc.o.d"
  "CMakeFiles/pdms_core.dir/normalize.cc.o"
  "CMakeFiles/pdms_core.dir/normalize.cc.o.d"
  "CMakeFiles/pdms_core.dir/pdms.cc.o"
  "CMakeFiles/pdms_core.dir/pdms.cc.o.d"
  "CMakeFiles/pdms_core.dir/ppl.cc.o"
  "CMakeFiles/pdms_core.dir/ppl.cc.o.d"
  "CMakeFiles/pdms_core.dir/ppl_parser.cc.o"
  "CMakeFiles/pdms_core.dir/ppl_parser.cc.o.d"
  "CMakeFiles/pdms_core.dir/reformulator.cc.o"
  "CMakeFiles/pdms_core.dir/reformulator.cc.o.d"
  "CMakeFiles/pdms_core.dir/rule_goal_tree.cc.o"
  "CMakeFiles/pdms_core.dir/rule_goal_tree.cc.o.d"
  "libpdms_core.a"
  "libpdms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
