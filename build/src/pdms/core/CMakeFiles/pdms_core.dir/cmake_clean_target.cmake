file(REMOVE_RECURSE
  "libpdms_core.a"
)
