
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdms/core/certain_answers.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/certain_answers.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/certain_answers.cc.o.d"
  "/root/repo/src/pdms/core/enumerate.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/enumerate.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/enumerate.cc.o.d"
  "/root/repo/src/pdms/core/network.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/network.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/network.cc.o.d"
  "/root/repo/src/pdms/core/normalize.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/normalize.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/normalize.cc.o.d"
  "/root/repo/src/pdms/core/pdms.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/pdms.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/pdms.cc.o.d"
  "/root/repo/src/pdms/core/ppl.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/ppl.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/ppl.cc.o.d"
  "/root/repo/src/pdms/core/ppl_parser.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/ppl_parser.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/ppl_parser.cc.o.d"
  "/root/repo/src/pdms/core/reformulator.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/reformulator.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/reformulator.cc.o.d"
  "/root/repo/src/pdms/core/rule_goal_tree.cc" "src/pdms/core/CMakeFiles/pdms_core.dir/rule_goal_tree.cc.o" "gcc" "src/pdms/core/CMakeFiles/pdms_core.dir/rule_goal_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdms/minicon/CMakeFiles/pdms_minicon.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/eval/CMakeFiles/pdms_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/constraints/CMakeFiles/pdms_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/lang/CMakeFiles/pdms_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/data/CMakeFiles/pdms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/util/CMakeFiles/pdms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
