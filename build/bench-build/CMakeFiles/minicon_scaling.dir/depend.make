# Empty dependencies file for minicon_scaling.
# This may be replaced when dependencies are built.
