file(REMOVE_RECURSE
  "../bench/minicon_scaling"
  "../bench/minicon_scaling.pdb"
  "CMakeFiles/minicon_scaling.dir/minicon_scaling.cc.o"
  "CMakeFiles/minicon_scaling.dir/minicon_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicon_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
