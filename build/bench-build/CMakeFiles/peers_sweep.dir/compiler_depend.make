# Empty compiler generated dependencies file for peers_sweep.
# This may be replaced when dependencies are built.
