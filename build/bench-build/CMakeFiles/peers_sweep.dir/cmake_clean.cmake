file(REMOVE_RECURSE
  "../bench/peers_sweep"
  "../bench/peers_sweep.pdb"
  "CMakeFiles/peers_sweep.dir/peers_sweep.cc.o"
  "CMakeFiles/peers_sweep.dir/peers_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peers_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
