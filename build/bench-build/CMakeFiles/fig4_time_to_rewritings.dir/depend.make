# Empty dependencies file for fig4_time_to_rewritings.
# This may be replaced when dependencies are built.
