file(REMOVE_RECURSE
  "../bench/fig4_time_to_rewritings"
  "../bench/fig4_time_to_rewritings.pdb"
  "CMakeFiles/fig4_time_to_rewritings.dir/fig4_time_to_rewritings.cc.o"
  "CMakeFiles/fig4_time_to_rewritings.dir/fig4_time_to_rewritings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_time_to_rewritings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
