file(REMOVE_RECURSE
  "../bench/ablation_optimizations"
  "../bench/ablation_optimizations.pdb"
  "CMakeFiles/ablation_optimizations.dir/ablation_optimizations.cc.o"
  "CMakeFiles/ablation_optimizations.dir/ablation_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
