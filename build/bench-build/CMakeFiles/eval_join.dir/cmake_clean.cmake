file(REMOVE_RECURSE
  "../bench/eval_join"
  "../bench/eval_join.pdb"
  "CMakeFiles/eval_join.dir/eval_join.cc.o"
  "CMakeFiles/eval_join.dir/eval_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
