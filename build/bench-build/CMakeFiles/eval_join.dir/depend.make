# Empty dependencies file for eval_join.
# This may be replaced when dependencies are built.
