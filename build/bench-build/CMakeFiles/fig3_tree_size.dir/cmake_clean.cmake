file(REMOVE_RECURSE
  "../bench/fig3_tree_size"
  "../bench/fig3_tree_size.pdb"
  "CMakeFiles/fig3_tree_size.dir/fig3_tree_size.cc.o"
  "CMakeFiles/fig3_tree_size.dir/fig3_tree_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tree_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
