# Empty compiler generated dependencies file for pdms_facade_test.
# This may be replaced when dependencies are built.
