file(REMOVE_RECURSE
  "CMakeFiles/pdms_facade_test.dir/pdms_facade_test.cc.o"
  "CMakeFiles/pdms_facade_test.dir/pdms_facade_test.cc.o.d"
  "pdms_facade_test"
  "pdms_facade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdms_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
