file(REMOVE_RECURSE
  "CMakeFiles/rule_goal_tree_test.dir/rule_goal_tree_test.cc.o"
  "CMakeFiles/rule_goal_tree_test.dir/rule_goal_tree_test.cc.o.d"
  "rule_goal_tree_test"
  "rule_goal_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_goal_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
