# Empty compiler generated dependencies file for rule_goal_tree_test.
# This may be replaced when dependencies are built.
