file(REMOVE_RECURSE
  "CMakeFiles/ppl_parser_test.dir/ppl_parser_test.cc.o"
  "CMakeFiles/ppl_parser_test.dir/ppl_parser_test.cc.o.d"
  "ppl_parser_test"
  "ppl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
