# Empty dependencies file for ppl_parser_test.
# This may be replaced when dependencies are built.
