# Empty compiler generated dependencies file for reformulator_test.
# This may be replaced when dependencies are built.
