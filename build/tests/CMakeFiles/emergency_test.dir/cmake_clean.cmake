file(REMOVE_RECURSE
  "CMakeFiles/emergency_test.dir/emergency_test.cc.o"
  "CMakeFiles/emergency_test.dir/emergency_test.cc.o.d"
  "emergency_test"
  "emergency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
