# Empty dependencies file for ppl_shell.
# This may be replaced when dependencies are built.
