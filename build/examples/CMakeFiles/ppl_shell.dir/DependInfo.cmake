
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ppl_shell.cc" "examples/CMakeFiles/ppl_shell.dir/ppl_shell.cc.o" "gcc" "examples/CMakeFiles/ppl_shell.dir/ppl_shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdms/gen/CMakeFiles/pdms_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/core/CMakeFiles/pdms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/minicon/CMakeFiles/pdms_minicon.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/eval/CMakeFiles/pdms_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/constraints/CMakeFiles/pdms_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/lang/CMakeFiles/pdms_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/data/CMakeFiles/pdms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pdms/util/CMakeFiles/pdms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
