file(REMOVE_RECURSE
  "CMakeFiles/ppl_shell.dir/ppl_shell.cc.o"
  "CMakeFiles/ppl_shell.dir/ppl_shell.cc.o.d"
  "ppl_shell"
  "ppl_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppl_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
