file(REMOVE_RECURSE
  "CMakeFiles/emergency.dir/emergency.cc.o"
  "CMakeFiles/emergency.dir/emergency.cc.o.d"
  "emergency"
  "emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
