# Empty compiler generated dependencies file for emergency.
# This may be replaced when dependencies are built.
